//! Property tests for the wire codec under the vendored proptest shim:
//!
//! * the JSON parser never panics, whatever bytes arrive on the socket;
//! * parse ∘ emit is the identity on finite documents (pretty and
//!   compact framing alike);
//! * the typed request codec round-trips arbitrary selection requests.

use cvcp_core::json::Json;
use cvcp_core::{Algorithm, Priority, SelectionRequest, SideInfoSpec};
use cvcp_data::rng::SeededRng;
use cvcp_server::Request;
use proptest::prelude::*;

/// Characters chosen to stress the string escaping paths: quotes,
/// backslashes, control characters, multi-byte UTF-8.
const STRING_PALETTE: [char; 16] = [
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1f}', 'é', '✓', '🦀',
    '\u{7f}',
];

fn arb_string(rng: &mut SeededRng, max_len: usize) -> String {
    let len = rng.index(max_len + 1);
    (0..len)
        .map(|_| STRING_PALETTE[rng.index(STRING_PALETTE.len())])
        .collect()
}

fn arb_number(rng: &mut SeededRng) -> f64 {
    match rng.index(4) {
        0 => rng.index(10_000) as f64,           // small integer
        1 => -(rng.index(10_000) as f64),        // negative integer
        2 => rng.uniform_in(-1.0e9, 1.0e9),      // wide float
        _ => rng.uniform_in(-1.0, 1.0) * 1.0e-6, // tiny float
    }
}

fn arb_json(rng: &mut SeededRng, depth: usize) -> Json {
    let variants = if depth == 0 { 4 } else { 6 };
    match rng.index(variants) {
        0 => Json::Null,
        1 => Json::Bool(rng.index(2) == 0),
        2 => Json::Num(arb_number(rng)),
        3 => Json::Str(arb_string(rng, 12)),
        4 => Json::Arr(
            (0..rng.index(4))
                .map(|_| arb_json(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.index(4))
                .map(|i| {
                    (
                        format!("k{i}_{}", arb_string(rng, 4)),
                        arb_json(rng, depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

/// A strategy producing arbitrary finite JSON documents.
struct ArbJson;

impl proptest::Strategy for ArbJson {
    type Value = Json;

    fn sample(&self, rng: &mut SeededRng) -> Json {
        arb_json(rng, 3)
    }
}

/// A strategy producing arbitrary (mostly malformed) input strings.
struct ArbGarbage;

impl proptest::Strategy for ArbGarbage {
    type Value = String;

    fn sample(&self, rng: &mut SeededRng) -> String {
        const PALETTE: &[u8] = b"{}[]\",:.0123456789eE+-truefalsnl \t\n\\u\x00\x1f\x7f";
        let len = rng.index(64);
        let bytes: Vec<u8> = (0..len)
            .map(|_| PALETTE[rng.index(PALETTE.len())])
            .collect();
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

/// A strategy producing arbitrary selection requests (not necessarily
/// semantically valid — the codec must round-trip them regardless).
struct ArbRequest;

impl proptest::Strategy for ArbRequest {
    type Value = SelectionRequest;

    fn sample(&self, rng: &mut SeededRng) -> SelectionRequest {
        let algorithm = if rng.index(2) == 0 {
            Algorithm::Fosc
        } else {
            Algorithm::MpckMeans
        };
        let side_info = if rng.index(2) == 0 {
            SideInfoSpec::LabelFraction(rng.uniform_in(0.0, 1.5))
        } else {
            SideInfoSpec::ConstraintSample {
                pool_fraction: rng.uniform_in(0.0, 1.0),
                sample_fraction: rng.uniform_in(0.0, 1.0),
            }
        };
        SelectionRequest {
            id: arb_string(rng, 8),
            dataset: ["iris_like", "aloi:3", "no_such_set", ""][rng.index(4)].to_string(),
            algorithm,
            params: (0..rng.index(6)).map(|_| rng.index(30)).collect(),
            side_info,
            n_folds: rng.index(12),
            stratified: rng.index(2) == 0,
            seed: rng.index(1 << 30) as u64,
            priority: [None, Some(Priority::Interactive), Some(Priority::Batch)][rng.index(3)],
            trace: rng.index(2) == 0,
        }
    }
}

proptest! {
    #[test]
    fn parser_never_panics_on_garbage(input in ArbGarbage) {
        // The property is "returns, never panics": the Result itself is
        // irrelevant.
        let _ = Json::parse(&input);
    }

    #[test]
    fn parser_never_panics_on_mutated_valid_documents(
        (doc, flip) in (ArbJson, 0usize..1024)
    ) {
        let mut bytes = doc.compact().into_bytes();
        if !bytes.is_empty() {
            let pos = flip % bytes.len();
            bytes[pos] = bytes[pos].wrapping_add(1 + (flip % 7) as u8);
        }
        let _ = Json::parse(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn parse_emit_parse_round_trips(doc in ArbJson) {
        let compact = Json::parse(&doc.compact()).expect("compact emit parses");
        prop_assert_eq!(&compact, &doc);
        let pretty = Json::parse(&doc.pretty()).expect("pretty emit parses");
        prop_assert_eq!(&pretty, &doc);
        // and a second emit→parse cycle is stable
        prop_assert_eq!(Json::parse(&compact.compact()).expect("stable"), doc);
    }

    #[test]
    fn request_codec_round_trips(request in ArbRequest) {
        let wire = Request::Select(request.clone());
        let line = wire.to_line();
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(Request::from_line(&line).expect("codec output parses"), wire);
    }
}
