//! The runtime half of the lock-discipline contract (the static half is
//! `cvcp-analysis` rule C1): every engine/cache/queue mutex carries a
//! `LockRank`, and debug builds assert the declared global acquisition
//! order on every acquisition.  These tests pin that
//!
//! 1. the guard is *armed* in debug-profile test runs — reversing two
//!    engine lock ranks panics immediately instead of deadlocking some day;
//! 2. the real engine paths (pool scheduling, cache sharing, eviction)
//!    run clean under the guard, i.e. the declared order matches reality.

use cvcp_engine::obs::lock_rank::{
    checking_enabled, RankedMutex, CACHE_PROFILE, CACHE_SHARD, POOL_SLEEP, POOL_STATE, SERVER_QUEUE,
};
use cvcp_engine::{ArtifactKey, CacheConfig, Engine, JobGraph};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The satellite contract from ISSUE 7: deliberately acquire two engine
/// locks in reversed rank order under `debug_assertions` and assert the
/// guard panics.  The mutexes here are stand-ins, but the *ranks* are the
/// very statics the engine's pool (`POOL_STATE`) and artifact cache
/// (`CACHE_SHARD`) register themselves under, so this pins the deployed
/// order, not a copy.
#[test]
fn reversed_engine_lock_order_panics_in_debug_builds() {
    if !checking_enabled() {
        // Release profile: the guard compiles away by design.
        return;
    }
    let pool_like = RankedMutex::new(&POOL_STATE, ());
    let shard_like = RankedMutex::new(&CACHE_SHARD, ());
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _shard_first = shard_like.lock().unwrap();
        let _pool_second = pool_like.lock().unwrap(); // rank 20 under rank 30: violation
    }));
    let message = *result
        .expect_err("acquiring pool-state under cache-shard must panic")
        .downcast::<String>()
        .expect("panic carries a message");
    assert!(message.contains("lock-rank violation"), "{message}");
}

/// The per-worker deque refactor's contract (ISSUE 9): the pool's
/// per-worker per-lane deques all share rank `POOL_STATE`, and equal
/// ranks never nest — every scheduler acquisition must be transient, so
/// holding one deque while locking a second (the classic symmetric
/// deadlock of work stealing: worker A steals from B while B steals
/// from A) panics immediately in debug builds.
#[test]
fn nesting_two_pool_deque_locks_panics_in_debug_builds() {
    if !checking_enabled() {
        // Release profile: the guard compiles away by design.
        return;
    }
    let my_deque = RankedMutex::new(&POOL_STATE, ());
    let victim_deque = RankedMutex::new(&POOL_STATE, ());
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _own = my_deque.lock().unwrap();
        let _steal = victim_deque.lock().unwrap(); // rank 20 under rank 20: violation
    }));
    let message = *result
        .expect_err("holding one pool deque while locking another must panic")
        .downcast::<String>()
        .expect("panic carries a message");
    assert!(message.contains("lock-rank violation"), "{message}");
}

#[test]
fn declared_order_is_queue_pool_shard_profile() {
    assert!(SERVER_QUEUE.rank < POOL_STATE.rank);
    assert!(POOL_STATE.rank < POOL_SLEEP.rank);
    assert!(POOL_SLEEP.rank < CACHE_SHARD.rank);
    assert!(CACHE_SHARD.rank < CACHE_PROFILE.rank);
}

/// A real multi-worker engine run over a bounded, sharded, eviction-active
/// cache: every ranked lock in the engine fires many times.  If any actual
/// code path acquired them against the declared order, the guard would
/// panic here (debug profile) instead of this test passing.
#[test]
fn engine_paths_run_clean_under_the_guard() {
    let engine = Engine::with_cache_config_exact(
        4,
        CacheConfig {
            max_bytes: Some(1 << 14),
            max_entries: Some(8),
            shards: 4,
            ..CacheConfig::default()
        },
    );
    let mut graph: JobGraph<u64> = JobGraph::new(17);
    for domain in 0..32u64 {
        graph.add_job(&[], move |ctx| {
            let v: Arc<Vec<u8>> = ctx.cache().get_or_compute(
                ArtifactKey::Custom {
                    domain: domain % 6,
                    key: 1,
                },
                || vec![7u8; 512],
            );
            v.len() as u64 + ctx.rng().next_u64() % 3
        });
    }
    let out = engine.run_graph(graph).expect_all("guarded run");
    assert_eq!(out.len(), 32);
    engine.cache().assert_accounting_consistent();
}
