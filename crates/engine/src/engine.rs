//! The engine proper: graph submission, batch multiplexing and the
//! sequential (one-thread) execution path.

use crate::cache::{ArtifactCache, CacheConfig, CacheStats, ShardStats};
use crate::graph::{CancelToken, GraphResult, JobCtx, JobGraph, JobOutcome, N_LANES};
use crate::pool::{PoolHandle, Task, ThreadPool};
use cvcp_obs::{EngineMetrics, MetricsSnapshot, SpanRecorder};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// A callback run exactly once when the engine is dropped, with access to
/// its artifact cache (the seam the cost-profile persistence uses to dump
/// learned per-kind compute-time EWMAs on shutdown).
type DropHook = Box<dyn FnOnce(&ArtifactCache) + Send>;

struct Prepared<T> {
    f: crate::graph::JobFn<T>,
    rng: cvcp_data::rng::SeededRng,
}

/// Shared state of one executing graph.
struct ExecState<T> {
    jobs: Vec<Mutex<Option<Prepared<T>>>>,
    deps_remaining: Vec<AtomicUsize>,
    dep_failed: Vec<AtomicBool>,
    dependents: Vec<Vec<usize>>,
    outcomes: Vec<Mutex<Option<JobOutcome<T>>>>,
    pending: AtomicUsize,
    cancelled: CancelToken,
    done_tx: Mutex<Option<mpsc::Sender<()>>>,
    cache: Arc<ArtifactCache>,
    /// The pool lane the graph's jobs are queued on (from the graph's
    /// [`crate::graph::Priority`]).
    lane: usize,
    /// The engine's always-on metrics registry.
    metrics: Arc<EngineMetrics>,
    /// When the graph was submitted — the start of its queue wait.
    submitted_at: Instant,
    /// Latch for the first job start (records the graph's queue wait once).
    started: AtomicBool,
    /// Identity of the engine's pool, for worker attribution in spans
    /// (`None` on a sequential engine).
    pool_id: Option<u64>,
    /// Opt-in span recorder — present only when the graph was submitted
    /// with [`JobGraph::enable_trace`].
    recorder: Option<SpanRecorder>,
}

/// Records `outcome` for job `idx`, propagates skips through the DAG and
/// returns the indices of jobs that just became ready to run.
fn complete_job<T>(state: &ExecState<T>, idx: usize, outcome: JobOutcome<T>) -> Vec<usize> {
    let mut ready = Vec::new();
    let mut worklist = vec![(idx, outcome)];
    while let Some((job, outcome)) = worklist.pop() {
        let ok = outcome.is_completed();
        {
            let mut slot = state.outcomes[job].lock().expect("outcome lock");
            debug_assert!(slot.is_none(), "job {job} completed twice");
            *slot = Some(outcome);
        }
        for &dependent in &state.dependents[job] {
            if !ok {
                state.dep_failed[dependent].store(true, Ordering::SeqCst);
            }
            if state.deps_remaining[dependent].fetch_sub(1, Ordering::SeqCst) == 1 {
                if state.dep_failed[dependent].load(Ordering::SeqCst)
                    || state.cancelled.is_cancelled()
                {
                    // Drop the un-run closure and propagate the skip.
                    state.jobs[dependent].lock().expect("job lock").take();
                    worklist.push((dependent, JobOutcome::Skipped));
                } else {
                    ready.push(dependent);
                }
            }
        }
        if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            if let Some(tx) = state.done_tx.lock().expect("done lock").take() {
                let _ = tx.send(());
            }
        }
    }
    ready
}

/// Runs job `idx` (which must be ready) and returns its outcome.
///
/// Instrumentation here is timing-only — the job's RNG stream was frozen
/// at submit, so recording can never perturb results.
fn run_job<T>(state: &ExecState<T>, idx: usize) -> JobOutcome<T> {
    if state.cancelled.is_cancelled() {
        state.jobs[idx].lock().expect("job lock").take();
        return JobOutcome::Skipped;
    }
    if !state.started.swap(true, Ordering::Relaxed) {
        state
            .metrics
            .record_graph_queue_wait(state.lane, state.submitted_at.elapsed().as_nanos() as u64);
    }
    let prepared = state.jobs[idx]
        .lock()
        .expect("job lock")
        .take()
        .expect("ready job present exactly once");
    let mut ctx = JobCtx {
        cache: Arc::clone(&state.cache),
        rng: prepared.rng,
        index: idx,
    };
    let f = prepared.f;
    let recorder = state.recorder.as_ref();
    let start_tick = recorder.map(|r| {
        crate::cache::reset_thread_cache_events();
        r.now_ns()
    });
    // cvcp: allow(D2, reason = "metrics-only job timing; the RNG stream was frozen at submit, so timing never reaches results")
    let run_from = state.metrics.is_enabled().then(Instant::now);
    let outcome = match catch_unwind(AssertUnwindSafe(move || f(&mut ctx))) {
        Ok(value) => JobOutcome::Completed(value),
        Err(payload) => JobOutcome::Failed(panic_message(payload.as_ref())),
    };
    if let Some(from) = run_from {
        state
            .metrics
            .record_job_run(state.lane, from.elapsed().as_nanos() as u64);
    }
    if let (Some(r), Some(start_ns)) = (recorder, start_tick) {
        let (hits, misses) = crate::cache::take_thread_cache_events();
        let worker = state.pool_id.and_then(crate::pool::current_worker_in);
        r.record_span(idx, worker, state.lane, start_ns, r.now_ns(), hits, misses);
    }
    outcome
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

/// Recursively schedules `idx` and, transitively, every job its completion
/// unblocks, onto the pool.
fn spawn_job<T: Send + 'static>(state: Arc<ExecState<T>>, pool: PoolHandle, idx: usize) {
    if let Some(recorder) = &state.recorder {
        // The enqueuing worker (None when submitted from outside the pool)
        // is what the pool's spawn routing keys on too, so span steal
        // attribution matches the deque the task actually landed on.
        recorder.mark_enqueue(idx, state.pool_id.and_then(crate::pool::current_worker_in));
    }
    let task_pool = pool.clone();
    let lane = state.lane;
    let task: Task = Box::new(move || {
        let outcome = run_job(&state, idx);
        for next in complete_job(&state, idx, outcome) {
            spawn_job(Arc::clone(&state), task_pool.clone(), next);
        }
    });
    pool.spawn(task, lane);
}

/// How a submitted graph will be driven to completion.
enum HandleMode {
    /// Already running on the pool; `wait` just blocks on the done channel.
    Pool,
    /// Executed inline, in deterministic ascending-index order, when `wait`
    /// is called (the one-thread / sequential path).
    Inline { ready: BTreeSet<usize> },
}

/// Handle to a submitted graph.
pub struct GraphHandle<T> {
    state: Arc<ExecState<T>>,
    done_rx: mpsc::Receiver<()>,
    mode: HandleMode,
}

impl<T> GraphHandle<T> {
    /// Requests cancellation: jobs that have not started yet are skipped;
    /// running jobs finish normally.
    pub fn cancel(&self) {
        self.state.cancelled.cancel();
    }

    /// The graph's cancellation token — the one bound via
    /// [`JobGraph::set_cancel_token`], or the graph's private token
    /// otherwise.  Clonable and `Send`, so a watcher (e.g. a serving
    /// front-end's disconnect detector) can cancel the graph without
    /// holding the handle, which `wait` consumes.
    pub fn cancel_token(&self) -> CancelToken {
        self.state.cancelled.clone()
    }

    /// Blocks until the graph has finished and returns all outcomes.
    pub fn wait(self) -> GraphResult<T> {
        match self.mode {
            HandleMode::Pool => {
                if self.state.pending.load(Ordering::SeqCst) > 0 {
                    // The sender lives until the final completion, so this
                    // only errors if every worker died — a bug worth loud.
                    self.done_rx.recv().expect("engine workers alive");
                }
            }
            HandleMode::Inline { mut ready } => {
                while let Some(idx) = ready.pop_first() {
                    let outcome = run_job(&self.state, idx);
                    for next in complete_job(&self.state, idx, outcome) {
                        if let Some(recorder) = &self.state.recorder {
                            recorder.mark_enqueue(next, None);
                        }
                        ready.insert(next);
                    }
                }
            }
        }
        let outcomes = self
            .state
            .outcomes
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("outcome lock")
                    .take()
                    .unwrap_or(JobOutcome::Skipped)
            })
            .collect();
        GraphResult {
            outcomes,
            trace: self.state.recorder.as_ref().map(SpanRecorder::finish),
        }
    }
}

/// The execution engine: a worker pool plus a shared artifact cache.
///
/// One engine is meant to be long-lived and shared: many selection requests
/// (and many experiment trials) multiplex over the same pool and reuse each
/// other's cached artifacts.
pub struct Engine {
    pool: Option<ThreadPool>,
    cache: Arc<ArtifactCache>,
    n_threads: usize,
    drop_hook: Mutex<Option<DropHook>>,
    metrics: Arc<EngineMetrics>,
}

/// The host parallelism worker counts are clamped to (requested count on
/// platforms where `available_parallelism` is unavailable).
fn host_parallelism(requested: usize) -> usize {
    std::thread::available_parallelism().map_or(requested, |p| p.get())
}

impl Engine {
    /// An engine with **up to** `n_threads` workers (clamped to ≥ 1 and to
    /// the host's available parallelism).  With one effective thread no
    /// worker is spawned at all: graphs run inline on the calling thread in
    /// deterministic ascending-index order — the sequential path.
    ///
    /// The upper clamp exists because CPU-bound workers beyond the host's
    /// hardware threads add only context-switch churn and busy-time
    /// inflation (every runnable worker accrues wall-clock while
    /// descheduled) — results are thread-count invariant, so trimming
    /// workers is pure scheduling.  Tests and profilers that study the
    /// oversubscribed schedule itself can pin the count with
    /// [`Engine::with_exact_threads`] / [`Engine::with_cache_config_exact`].
    pub fn new(n_threads: usize) -> Self {
        Self::with_cache(n_threads, Arc::new(ArtifactCache::new()))
    }

    /// An engine with *exactly* `n_threads` workers (clamped to ≥ 1 only),
    /// even beyond the host's available parallelism.  Scheduler tests and
    /// `profile_engine` use this so multi-worker interleavings (steals,
    /// parks, cooperative joins) stay exercised on small CI hosts.
    pub fn with_exact_threads(n_threads: usize) -> Self {
        Self::build(n_threads.max(1), Arc::new(ArtifactCache::new()), true)
    }

    /// An engine with `n_threads` workers (clamped like [`Engine::new`])
    /// and a fresh artifact cache bounded by `config` (LRU eviction keeps
    /// the resident artifacts within the configured byte/entry budgets; see
    /// [`CacheConfig`]).
    pub fn with_cache_config(n_threads: usize, config: CacheConfig) -> Self {
        Self::with_cache(n_threads, Arc::new(ArtifactCache::with_config(config)))
    }

    /// [`Engine::with_cache_config`] without the host-parallelism clamp —
    /// the bounded-cache counterpart of [`Engine::with_exact_threads`].
    pub fn with_cache_config_exact(n_threads: usize, config: CacheConfig) -> Self {
        Self::build(
            n_threads.max(1),
            Arc::new(ArtifactCache::with_config(config)),
            true,
        )
    }

    /// An engine sharing an existing artifact cache (e.g. across engines or
    /// with a previous engine's warm cache).  The worker count is clamped
    /// like [`Engine::new`].
    pub fn with_cache(n_threads: usize, cache: Arc<ArtifactCache>) -> Self {
        let requested = n_threads.max(1);
        Self::build(requested.min(host_parallelism(requested)), cache, true)
    }

    /// An engine whose always-on metrics registry is a no-op.  This exists
    /// for one purpose: giving `bench_engine` a true baseline to measure
    /// the metrics overhead against.  Everything else (results, tracing
    /// opt-in, the worker clamp) behaves identically.
    pub fn with_metrics_disabled(n_threads: usize) -> Self {
        let requested = n_threads.max(1);
        Self::build(
            requested.min(host_parallelism(requested)),
            Arc::new(ArtifactCache::new()),
            false,
        )
    }

    fn build(n_threads: usize, cache: Arc<ArtifactCache>, metrics_enabled: bool) -> Self {
        let n = n_threads.max(1);
        let pool_workers = if n > 1 { n } else { 0 };
        let metrics = Arc::new(if metrics_enabled {
            EngineMetrics::new(pool_workers, N_LANES)
        } else {
            EngineMetrics::disabled(pool_workers, N_LANES)
        });
        Self {
            pool: (n > 1).then(|| ThreadPool::new(n, Arc::clone(&metrics))),
            cache,
            n_threads: n,
            drop_hook: Mutex::new(None),
            metrics,
        }
    }

    /// The engine's always-on metrics registry (job run times, graph queue
    /// waits, per-worker busy/steal/park counters).
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// A plain copy of the current metrics state — the payload behind the
    /// serving front-end's `metrics` endpoint.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Installs a callback that runs exactly once when the engine is
    /// dropped, with access to its artifact cache.  The serving front-end
    /// uses this to persist the cache's learned cost profile on shutdown
    /// (see [`ArtifactCache::cost_profile`]).  A later call replaces an
    /// earlier hook.
    pub fn set_drop_hook(&self, hook: impl FnOnce(&ArtifactCache) + Send + 'static) {
        *self.drop_hook.lock().expect("drop hook lock") = Some(Box::new(hook));
    }

    /// The sequential engine: one thread, inline execution.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// An engine sized to the machine (`available_parallelism`).
    pub fn parallel() -> Self {
        let n = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        Self::new(n)
    }

    /// Number of *effective* worker threads (1 for the sequential engine;
    /// at most the host's available parallelism for clamped constructors).
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The engine's shared artifact cache.
    pub fn cache(&self) -> &Arc<ArtifactCache> {
        &self.cache
    }

    /// Aggregate statistics of the engine's artifact cache (the payload the
    /// serving front-end's `stats` endpoint reports).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-shard statistics of the engine's artifact cache.
    pub fn cache_shard_stats(&self) -> Vec<ShardStats> {
        self.cache.shard_stats()
    }

    /// Submits a graph for execution and returns a handle.
    ///
    /// On a multi-threaded engine the graph starts running immediately; on
    /// the sequential engine it runs when [`GraphHandle::wait`] is called.
    /// Either way, results are bit-identical for the same graph seed.
    ///
    /// Re-entrancy: submitting from inside one of this engine's own jobs
    /// is safe — the nested graph is executed inline on the submitting
    /// worker when its handle is waited on (scheduling it on the pool and
    /// blocking could leave every worker waiting on a nested graph with no
    /// thread left to run it).
    pub fn submit<T: Send + 'static>(&self, graph: JobGraph<T>) -> GraphHandle<T> {
        let n = graph.jobs.len();
        let base = graph.base_rng;
        let lane = graph.priority.lane_index();
        let cancelled = graph.cancel_token.unwrap_or_default();
        // Opt-in span recording: the recorder's epoch is the submit
        // instant, so span ticks read as "ns since submit".
        let recorder = graph.trace_name.map(|name| {
            let mut labels = graph.labels;
            labels.resize(n, String::new());
            let deps = graph.jobs.iter().map(|job| job.deps.clone()).collect();
            SpanRecorder::new(
                name,
                self.pool.as_ref().map_or(0, |_| self.n_threads),
                labels,
                deps,
            )
        });
        let mut deps_remaining = Vec::with_capacity(n);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut jobs = Vec::with_capacity(n);
        for (idx, job) in graph.jobs.into_iter().enumerate() {
            deps_remaining.push(AtomicUsize::new(job.deps.len()));
            for &d in &job.deps {
                debug_assert!(d < idx, "dependency edges point backwards by construction");
                dependents[d].push(idx);
            }
            jobs.push(Mutex::new(Some(Prepared {
                f: job.f,
                rng: base.fork_stream(job.salt),
            })));
        }
        let (done_tx, done_rx) = mpsc::channel();
        let state = Arc::new(ExecState {
            jobs,
            deps_remaining,
            dep_failed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            dependents,
            outcomes: (0..n).map(|_| Mutex::new(None)).collect(),
            pending: AtomicUsize::new(n),
            cancelled,
            done_tx: Mutex::new(Some(done_tx)),
            cache: Arc::clone(&self.cache),
            lane,
            metrics: Arc::clone(&self.metrics),
            // cvcp: allow(D2, reason = "queue-wait metrics timestamp; observability only")
            submitted_at: Instant::now(),
            started: AtomicBool::new(false),
            pool_id: self.pool.as_ref().map(ThreadPool::id),
            recorder,
        });
        let ready: BTreeSet<usize> = (0..n)
            .filter(|&i| state.deps_remaining[i].load(Ordering::SeqCst) == 0)
            .collect();
        match &self.pool {
            // A graph submitted from one of this engine's own workers must
            // not be scheduled back onto the pool: with every worker
            // blocked in `wait()` on a nested graph, no thread would be
            // left to run the nested jobs — a deadlock.  Inline execution
            // keeps nesting safe and stays deterministic.
            Some(pool) if pool.is_worker_thread() => GraphHandle {
                state,
                done_rx,
                mode: HandleMode::Inline { ready },
            },
            Some(pool) => {
                for idx in ready {
                    spawn_job(Arc::clone(&state), pool.handle(), idx);
                }
                GraphHandle {
                    state,
                    done_rx,
                    mode: HandleMode::Pool,
                }
            }
            None => GraphHandle {
                state,
                done_rx,
                mode: HandleMode::Inline { ready },
            },
        }
    }

    /// Submits a graph and blocks until it finishes.
    pub fn run_graph<T: Send + 'static>(&self, graph: JobGraph<T>) -> GraphResult<T> {
        self.submit(graph).wait()
    }

    /// Submits many graphs at once — they interleave over the same pool —
    /// and returns their results in submission order.
    pub fn run_batch<T: Send + 'static>(&self, graphs: Vec<JobGraph<T>>) -> Vec<GraphResult<T>> {
        let handles: Vec<_> = graphs.into_iter().map(|g| self.submit(g)).collect();
        handles.into_iter().map(GraphHandle::wait).collect()
    }

    /// Convenience: runs independent jobs (no dependencies) and returns
    /// their values in submission order.
    ///
    /// # Panics
    ///
    /// Panics if any job panics.
    pub fn run_jobs<T, F>(&self, seed: u64, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut JobCtx) -> T + Send + 'static,
    {
        let mut graph = JobGraph::new(seed);
        for f in jobs {
            graph.add_job(&[], f);
        }
        self.run_graph(graph).expect_all("run_jobs")
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if let Some(hook) = self.drop_hook.lock().expect("drop hook lock").take() {
            hook(&self.cache);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn dependencies_run_before_dependents() {
        for n_threads in [1, 4] {
            let engine = Engine::with_exact_threads(n_threads);
            let mut graph: JobGraph<u64> = JobGraph::new(1);
            let order = Arc::new(Mutex::new(Vec::new()));
            let (o1, o2, o3) = (order.clone(), order.clone(), order.clone());
            let a = graph.add_job(&[], move |_| {
                o1.lock().unwrap().push("a");
                1
            });
            let b = graph.add_job(&[], move |_| {
                o2.lock().unwrap().push("b");
                2
            });
            let _c = graph.add_job(&[a, b], move |_| {
                o3.lock().unwrap().push("c");
                3
            });
            let values = engine.run_graph(graph).expect_all("dag");
            assert_eq!(values, vec![1, 2, 3]);
            let order = order.lock().unwrap();
            assert_eq!(order.len(), 3);
            assert_eq!(*order.last().unwrap(), "c");
        }
    }

    #[test]
    fn job_rng_streams_are_thread_count_invariant() {
        let draws = |n_threads: usize| -> Vec<u64> {
            let engine = Engine::with_exact_threads(n_threads);
            let mut graph: JobGraph<u64> = JobGraph::new(99);
            for _ in 0..16 {
                graph.add_job(&[], |ctx| ctx.rng().next_u64());
            }
            engine.run_graph(graph).expect_all("rng draws")
        };
        let seq = draws(1);
        assert_eq!(seq, draws(2));
        assert_eq!(seq, draws(8));
        // and the streams differ from each other
        let mut unique = seq.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seq.len());
    }

    #[test]
    fn failed_job_skips_dependents_but_not_siblings() {
        for n_threads in [1, 4] {
            let engine = Engine::with_exact_threads(n_threads);
            let mut graph: JobGraph<u32> = JobGraph::new(3);
            let bad = graph.add_job(&[], |_| panic!("deliberate failure"));
            let child = graph.add_job(&[bad], |_| 10);
            let _grandchild = graph.add_job(&[child], |_| 11);
            let _sibling = graph.add_job(&[], |_| 12);
            let result = engine.run_graph(graph);
            assert!(
                matches!(&result.outcomes[0], JobOutcome::Failed(m) if m.contains("deliberate"))
            );
            assert_eq!(result.outcomes[1], JobOutcome::Skipped);
            assert_eq!(result.outcomes[2], JobOutcome::Skipped);
            assert_eq!(result.outcomes[3], JobOutcome::Completed(12));
        }
    }

    #[test]
    fn engine_survives_a_failed_graph() {
        let engine = Engine::with_exact_threads(2);
        let mut bad: JobGraph<u32> = JobGraph::new(1);
        bad.add_job(&[], |_| panic!("boom"));
        let result = engine.run_graph(bad);
        assert!(result.first_failure().is_some());
        // The pool still works afterwards.
        let mut good: JobGraph<u32> = JobGraph::new(2);
        good.add_job(&[], |_| 5);
        assert_eq!(engine.run_graph(good).expect_all("after failure"), vec![5]);
    }

    #[test]
    fn cancellation_skips_unstarted_jobs() {
        let engine = Engine::sequential();
        let mut graph: JobGraph<u32> = JobGraph::new(1);
        graph.add_job(&[], |_| 1);
        graph.add_job(&[], |_| 2);
        let handle = engine.submit(graph);
        handle.cancel();
        let result = handle.wait();
        assert!(result.outcomes.iter().all(|o| *o == JobOutcome::Skipped));
    }

    #[test]
    fn pre_cancelled_token_skips_the_whole_graph() {
        for n_threads in [1, 4] {
            let engine = Engine::with_exact_threads(n_threads);
            let token = CancelToken::new();
            token.cancel();
            let mut graph: JobGraph<u32> = JobGraph::new(1);
            graph.add_job(&[], |_| 1);
            graph.add_job(&[], |_| 2);
            graph.set_cancel_token(token);
            let result = engine.submit(graph).wait();
            assert!(result.outcomes.iter().all(|o| *o == JobOutcome::Skipped));
        }
    }

    #[test]
    fn external_token_cancels_a_running_graph() {
        // Job 0 blocks until the external watcher cancels; its dependent
        // must then be skipped while the already-running job completes.
        let engine = Engine::with_exact_threads(2);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let token = CancelToken::new();
        let mut graph: JobGraph<u32> = JobGraph::new(7);
        let a = graph.add_job(&[], move |_| {
            started_tx.send(()).expect("watcher alive");
            release_rx.recv().expect("release signal");
            1
        });
        graph.add_job(&[a], |_| 2);
        graph.set_cancel_token(token.clone());
        let handle = engine.submit(graph);
        assert!(!handle.cancel_token().is_cancelled());
        started_rx.recv().expect("job started");
        token.cancel();
        release_tx.send(()).expect("job alive");
        let result = handle.wait();
        assert_eq!(result.outcomes[0], JobOutcome::Completed(1));
        assert_eq!(result.outcomes[1], JobOutcome::Skipped);
        assert!(token.is_cancelled());
    }

    #[test]
    fn handle_token_and_graph_token_are_the_same_flag() {
        let engine = Engine::sequential();
        let bound = CancelToken::new();
        let mut graph: JobGraph<u32> = JobGraph::new(3);
        graph.add_job(&[], |_| 9);
        graph.set_cancel_token(bound.clone());
        let handle = engine.submit(graph);
        handle.cancel_token().cancel();
        assert!(bound.is_cancelled());
        let result = handle.wait();
        assert_eq!(result.outcomes[0], JobOutcome::Skipped);
    }

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let engine = Engine::with_exact_threads(4);
        let graphs: Vec<JobGraph<usize>> = (0..6)
            .map(|i| {
                let mut g = JobGraph::new(i as u64);
                g.add_job(&[], move |_| i);
                g
            })
            .collect();
        let results = engine.run_batch(graphs);
        let values: Vec<usize> = results
            .into_iter()
            .flat_map(|r| r.expect_all("batch"))
            .collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn run_jobs_preserves_order_and_parallelises() {
        let engine = Engine::with_exact_threads(4);
        let touched = Arc::new(AtomicU64::new(0));
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                let touched = Arc::clone(&touched);
                move |_ctx: &mut JobCtx| {
                    touched.fetch_add(1, Ordering::SeqCst);
                    i * 2
                }
            })
            .collect();
        let out = engine.run_jobs(7, jobs);
        assert_eq!(out, (0..32u64).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(touched.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn nested_submission_from_worker_jobs_does_not_deadlock() {
        // Every worker occupies itself with an outer job that submits and
        // waits on a nested graph; without the inline re-entrancy guard
        // this deadlocks (all workers blocked, nested jobs unrunnable).
        let engine = Arc::new(Engine::with_exact_threads(2));
        let mut outer: JobGraph<u64> = JobGraph::new(11);
        for i in 0..4u64 {
            let engine = Arc::clone(&engine);
            outer.add_job(&[], move |_| {
                let mut inner: JobGraph<u64> = JobGraph::new(100 + i);
                let a = inner.add_job(&[], move |_| i);
                inner.add_job(&[a], move |_| i * 10);
                let values = engine.run_graph(inner).expect_all("nested");
                values[0] + values[1]
            });
        }
        let out = engine.run_graph(outer).expect_all("outer");
        assert_eq!(out, vec![0, 11, 22, 33]);
    }

    #[test]
    fn empty_graph_completes_immediately() {
        let engine = Engine::with_exact_threads(2);
        let graph: JobGraph<u32> = JobGraph::new(0);
        let result = engine.run_graph(graph);
        assert!(result.outcomes.is_empty());
        assert!(result.all_completed());
    }

    #[test]
    fn jobs_share_the_engine_cache() {
        use crate::cache::ArtifactKey;
        let engine = Engine::with_exact_threads(4);
        let mut graph: JobGraph<usize> = JobGraph::new(5);
        for _ in 0..8 {
            graph.add_job(&[], |ctx| {
                let v: Arc<Vec<u8>> = ctx
                    .cache()
                    .get_or_compute(ArtifactKey::Custom { domain: 1, key: 2 }, || vec![1, 2, 3]);
                v.len()
            });
        }
        let out = engine.run_graph(graph).expect_all("cache jobs");
        assert!(out.iter().all(|&l| l == 3));
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn cache_policies_preserve_bit_identity_across_thread_counts() {
        use crate::cache::{AdmissionPolicy, ArtifactKey};

        // Admission, rebalancing, and eviction change *which* computes run
        // and what stays resident — never the values jobs observe.  The
        // same workload must therefore produce identical results under
        // every cache policy at 1/2/8 threads.
        let run = |n_threads: usize, config: CacheConfig| -> Vec<u64> {
            let engine = Engine::with_cache_config_exact(n_threads, config);
            let jobs: Vec<_> = (0..48u64)
                .map(|i| {
                    move |ctx: &mut JobCtx| {
                        let bulk: Arc<Vec<u64>> = ctx.cache().get_or_compute(
                            ArtifactKey::Custom {
                                domain: 11,
                                key: i % 7,
                            },
                            || (0..256).map(|j| (i % 7) * 1_000 + j).collect(),
                        );
                        let scalar: Arc<u64> = ctx.cache().get_or_compute(
                            ArtifactKey::Custom {
                                domain: 12,
                                key: i % 5,
                            },
                            || (i % 5) * 31 + 7,
                        );
                        bulk.iter().sum::<u64>() ^ scalar.wrapping_mul(i + 1)
                    }
                })
                .collect();
            engine.run_jobs(5, jobs)
        };

        let bounded = || {
            CacheConfig::default()
                .with_max_bytes(4 << 10)
                .with_shards(8)
        };
        let configs = [
            CacheConfig::default(),
            bounded(),
            bounded().with_admission(AdmissionPolicy::Cost),
            bounded().with_rebalance_interval(8),
            bounded().with_rebalance_interval(0),
            bounded()
                .with_admission(AdmissionPolicy::Cost)
                .with_rebalance_interval(8)
                .with_rebalance_floor_percent(10),
        ];
        let baseline = run(1, CacheConfig::default());
        for config in configs {
            for n_threads in [1, 2, 8] {
                assert_eq!(
                    run(n_threads, config),
                    baseline,
                    "results diverged at {n_threads} threads under {config:?}"
                );
            }
        }
    }

    #[test]
    fn interactive_graph_leapfrogs_queued_batch_jobs() {
        // The starvation regression: two workers are occupied by batch
        // jobs blocked on a gate, 40 more batch jobs are queued behind
        // them, and only then is an interactive graph submitted.  Once the
        // gate opens, the interactive job must run before (almost all of)
        // the queued batch jobs — under the old single-lane FIFO injector
        // it would have run after all 40.
        use crate::graph::Priority;
        let engine = Engine::with_exact_threads(2);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let batch_done = Arc::new(AtomicUsize::new(0));
        let mut batch: JobGraph<u32> = JobGraph::new(1);
        batch.set_priority(Priority::Batch);
        for _ in 0..2 {
            let started_tx = started_tx.clone();
            let release_rx = Arc::clone(&release_rx);
            batch.add_job(&[], move |_| {
                started_tx.send(()).expect("watcher alive");
                release_rx
                    .lock()
                    .expect("release lock")
                    .recv()
                    .expect("release signal");
                0
            });
        }
        for _ in 0..40 {
            let batch_done = Arc::clone(&batch_done);
            batch.add_job(&[], move |_| {
                batch_done.fetch_add(1, Ordering::SeqCst) as u32
            });
        }
        let batch_handle = engine.submit(batch);
        started_rx.recv().expect("first blocker started");
        started_rx.recv().expect("second blocker started");

        // Both workers blocked, 40 batch jobs queued; now the interactive
        // graph arrives and records how much batch work ran before it.
        let seen = Arc::clone(&batch_done);
        let mut interactive: JobGraph<u32> = JobGraph::new(2);
        interactive.add_job(&[], move |_| seen.load(Ordering::SeqCst) as u32);
        let interactive_handle = engine.submit(interactive);
        release_tx.send(()).expect("blocker alive");
        release_tx.send(()).expect("blocker alive");
        let seen_at_interactive = interactive_handle.wait().expect_all("interactive graph")[0];
        assert!(
            seen_at_interactive <= 4,
            "interactive job observed {seen_at_interactive} completed batch jobs — it was \
             starved behind the queued batch lane"
        );
        let batch_result = batch_handle.wait();
        assert!(batch_result.all_completed());
        assert_eq!(batch_done.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn priority_lane_does_not_change_results() {
        use crate::graph::Priority;
        let draws = |priority: Priority| -> Vec<u64> {
            let engine = Engine::with_exact_threads(4);
            let mut graph: JobGraph<u64> = JobGraph::new(77);
            graph.set_priority(priority);
            for _ in 0..16 {
                graph.add_job(&[], |ctx| ctx.rng().next_u64());
            }
            engine.run_graph(graph).expect_all("lane draws")
        };
        assert_eq!(draws(Priority::Interactive), draws(Priority::Batch));
    }

    #[test]
    fn drop_hook_runs_once_with_the_cache() {
        use crate::cache::ArtifactKey;
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let engine = Engine::with_exact_threads(1);
            let _: Arc<u64> = engine
                .cache()
                .get_or_compute(ArtifactKey::Custom { domain: 3, key: 3 }, || 9);
            let ran = Arc::clone(&ran);
            engine.set_drop_hook(move |cache| {
                assert_eq!(cache.stats().resident_entries, 1);
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn traced_graph_records_one_span_per_executed_job() {
        for n_threads in [1, 4] {
            let engine = Engine::with_exact_threads(n_threads);
            let mut graph: JobGraph<u64> = JobGraph::new(5);
            let a = graph.add_job(&[], |ctx| ctx.rng().next_u64());
            graph.set_job_label(a, "artifact/a");
            for _ in 0..7 {
                let j = graph.add_job(&[a], |ctx| ctx.rng().next_u64());
                graph.set_job_label(j, "eval");
            }
            graph.enable_trace("unit");
            let result = engine.run_graph(graph);
            assert!(result.all_completed());
            let trace = result.trace.expect("tracing was enabled");
            assert_eq!(trace.n_jobs, 8);
            assert_eq!(trace.spans.len(), 8, "one span per executed job");
            assert_eq!(trace.name, "unit");
            assert_eq!(trace.spans[0].label, "artifact/a");
            assert_eq!(trace.spans[1].label, "eval");
            assert_eq!(trace.deps[1], vec![0]);
            for s in &trace.spans {
                assert!(
                    s.enqueue_ns <= s.start_ns,
                    "job {} enqueued after start",
                    s.job
                );
                assert!(s.start_ns <= s.end_ns);
                assert!(s.end_ns <= trace.wall_ns);
            }
            // Dependencies are respected on the recorded timeline too.
            let root_end = trace.spans[0].end_ns;
            assert!(trace.spans[1..].iter().all(|s| s.start_ns >= root_end));
        }
    }

    #[test]
    fn tracing_does_not_change_results() {
        let draws = |n_threads: usize, trace: bool| -> Vec<u64> {
            let engine = Engine::with_exact_threads(n_threads);
            let mut graph: JobGraph<u64> = JobGraph::new(123);
            for _ in 0..16 {
                graph.add_job(&[], |ctx| ctx.rng().next_u64());
            }
            if trace {
                graph.enable_trace("ab");
            }
            engine.run_graph(graph).expect_all("traced draws")
        };
        let plain = draws(1, false);
        for n_threads in [1, 2, 8] {
            assert_eq!(draws(n_threads, true), plain);
            assert_eq!(draws(n_threads, false), plain);
        }
    }

    #[test]
    fn untraced_graph_returns_no_trace() {
        let engine = Engine::with_exact_threads(2);
        let mut graph: JobGraph<u32> = JobGraph::new(1);
        graph.add_job(&[], |_| 1);
        assert!(engine.run_graph(graph).trace.is_none());
    }

    #[test]
    fn metrics_record_job_runs_and_graph_queue_wait() {
        use crate::graph::Priority;
        let engine = Engine::with_exact_threads(2);
        let mut graph: JobGraph<u32> = JobGraph::new(9);
        graph.set_priority(Priority::Batch);
        for _ in 0..6 {
            graph.add_job(&[], |_| 1);
        }
        engine.run_graph(graph).expect_all("metered");
        let snap = engine.metrics_snapshot();
        let batch = Priority::Batch.lane_index();
        assert_eq!(snap.job_run[batch].count(), 6);
        assert_eq!(snap.job_run[Priority::Interactive.lane_index()].count(), 0);
        assert_eq!(snap.graphs_submitted[batch], 1);
        assert_eq!(snap.graph_queue_wait[batch].count(), 1);
        assert_eq!(snap.workers.len(), 2);
        let tasks: u64 = snap.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(tasks, 6);
    }

    #[test]
    fn disabled_metrics_record_nothing_but_results_match() {
        let run = |engine: &Engine| -> Vec<u64> {
            let mut graph: JobGraph<u64> = JobGraph::new(7);
            for _ in 0..8 {
                graph.add_job(&[], |ctx| ctx.rng().next_u64());
            }
            engine.run_graph(graph).expect_all("metrics A/B")
        };
        let on = Engine::with_exact_threads(2);
        let off = Engine::with_metrics_disabled(2);
        assert!(!off.metrics().is_enabled());
        assert_eq!(run(&on), run(&off));
        assert_eq!(off.metrics_snapshot().job_run[0].count(), 0);
        assert!(on.metrics_snapshot().job_run[0].count() > 0);
    }

    #[test]
    fn traced_spans_attribute_cache_hits_to_jobs() {
        use crate::cache::ArtifactKey;
        let engine = Engine::sequential();
        let key = ArtifactKey::Custom { domain: 4, key: 4 };
        let mut graph: JobGraph<u64> = JobGraph::new(2);
        let a = graph.add_job(&[], move |ctx| *ctx.cache().get_or_compute(key, || 5u64));
        graph.add_job(&[a], move |ctx| *ctx.cache().get_or_compute(key, || 5u64));
        graph.enable_trace("cache-attribution");
        let result = engine.run_graph(graph);
        let trace = result.trace.expect("traced");
        assert_eq!(
            (trace.spans[0].cache_hits, trace.spans[0].cache_misses),
            (0, 1),
            "first toucher computes"
        );
        assert_eq!(
            (trace.spans[1].cache_hits, trace.spans[1].cache_misses),
            (1, 0),
            "second toucher hits"
        );
    }

    #[test]
    fn job_panic_inside_get_or_compute_releases_the_in_flight_slot() {
        // The leak regression, through the pool's panic isolation: a job
        // that panics inside `get_or_compute` fails its graph, but the
        // cache must not keep the uncommitted in-flight entry (it would be
        // invisible to `len()`, never an eviction candidate, and pile up
        // once per failed key on a long-lived serving engine).
        use crate::cache::ArtifactKey;
        let engine = Engine::with_exact_threads(2);
        let key = ArtifactKey::Custom { domain: 9, key: 1 };
        let mut graph: JobGraph<u64> = JobGraph::new(1);
        graph.add_job(&[], move |ctx| {
            let v: Arc<u64> = ctx
                .cache()
                .get_or_compute(key, || panic!("compute exploded"));
            *v
        });
        let result = engine.run_graph(graph);
        assert!(matches!(&result.outcomes[0], JobOutcome::Failed(m) if m.contains("exploded")));
        assert_eq!(
            engine.cache().raw_entry_count(),
            0,
            "panicked compute must not leak its in-flight slot"
        );
        // The same key is retryable on the same engine afterwards.
        let v: Arc<u64> = engine.cache().get_or_compute(key, || 7);
        assert_eq!(*v, 7);
        assert_eq!(engine.cache_stats().resident_entries, 1);
        engine.cache().assert_accounting_consistent();
    }
}
