//! A work-stealing thread pool built on `std::thread` + condvar wake-ups,
//! with two priority lanes and **per-worker, per-lane sharded deque locks**.
//!
//! Each worker owns one local deque *per lane*; tasks spawned *from* a
//! worker go to that worker's deque for the task's lane (LIFO — the
//! continuation of a job is cache-hot), tasks submitted from outside go to
//! the lane's shared injector queue (FIFO), and idle workers steal the
//! *oldest* task from a sibling.  Workers always drain the interactive lane
//! (index 0) completely before touching the batch lane: an interactive
//! graph submitted while a large batch graph is queued overtakes every
//! batch job that has not started yet (see [`crate::graph::Priority`]).
//!
//! **Lock sharding.** Every deque — each worker's per-lane local and each
//! lane's injector — sits behind its own [`RankedMutex`] at rank
//! `POOL_STATE`; with `unsafe` forbidden workspace-wide a lock-free
//! Chase–Lev deque is off the table, but one short-lived lock per deque is
//! safe Rust and removes the old design's single pool mutex from every
//! push, pop and steal.  The strict rank order doubles as a guard: pool
//! deque locks share one rank, so *holding two at once* panics in debug
//! builds — every acquisition here is transient (lock, move one task,
//! unlock).  Sleeping is coordinated by a separate epoch counter behind
//! `POOL_SLEEP`: producers push, bump the epoch and notify; an idle worker
//! baselines the epoch, rescans once, and only parks if the epoch is still
//! unchanged, so a task published between scan and park can never be lost.
//!
//! **Deterministic stealing.** An idle worker probes victims in a fixed
//! rotation starting at its right-hand neighbour ([`steal_order`]): worker
//! `me` of `n` scans `me+1, me+2, …` (mod `n`).  The probe order depends
//! only on the worker id, never on queue lengths sampled under a racing
//! lock, so scheduling decisions are reproducible given the same arrival
//! order (results never depend on them either way — RNG streams are
//! structural).
//!
//! **Cooperative helping.** A worker that must wait for a result someone
//! else is producing (an in-flight artifact-cache computation) can run one
//! ready pool task instead of blocking — see [`help_run_one_task`], used by
//! the cache's cooperative joins.  Helping depth is capped so a pathological
//! chain of waiting jobs cannot overflow the stack.
//!
//! Panic isolation: a panicking task never takes down its worker; the panic
//! is caught and the worker returns to the queue loop, so a failed job
//! cannot poison the pool (verified by `tests/engine_determinism.rs`).

use crate::graph::N_LANES;
use cvcp_obs::lock_rank::{POOL_SLEEP, POOL_STATE};
use cvcp_obs::{EngineMetrics, RankedCondvar, RankedMutex};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Source of unique pool identities (so a worker thread can tell *which*
/// pool it belongs to — the engine uses this to run graphs submitted from
/// its own workers inline instead of deadlocking the pool).
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

/// Cap on nested [`help_run_one_task`] frames per thread: a helped task may
/// itself wait on an in-flight artifact and help again, so the recursion is
/// bounded before the waiter falls back to parking.
const MAX_HELP_DEPTH: usize = 4;

thread_local! {
    /// `(pool id, worker index)` of the pool worker running on this thread.
    static WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
    /// Weak handle back to this worker's pool, for [`help_run_one_task`].
    static CURRENT_POOL: RefCell<Option<Weak<Inner>>> = const { RefCell::new(None) };
    /// Live [`help_run_one_task`] frames on this thread.
    static HELP_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Index of the calling thread's worker *within the pool identified by
/// `pool_id`* — `None` on non-worker threads and on workers of other
/// pools.  Used to attribute trace spans to the right lane of the right
/// pool's timeline.
pub(crate) fn current_worker_in(pool_id: u64) -> Option<usize> {
    WORKER
        .with(Cell::get)
        .filter(|&(pool, _)| pool == pool_id)
        .map(|(_, index)| index)
}

/// Victim probe order for worker `me` in a pool of `n` workers: the fixed
/// rotation `me+1, me+2, …, me+n-1` (mod `n`).  Pure — the steal schedule
/// is a function of the worker id alone.
pub(crate) fn steal_order(me: usize, n: usize) -> impl Iterator<Item = usize> {
    (1..n).map(move |offset| (me + offset) % n)
}

/// Runs one ready pool task on the calling thread, if the thread is a pool
/// worker with ready work and the helping depth cap is not exhausted.
/// Returns whether a task ran.  This is the cache's cooperative-join hook:
/// a worker waiting for an in-flight artifact computed by a sibling turns
/// its wait into throughput instead of blocking the thread.
pub(crate) fn help_run_one_task() -> bool {
    if HELP_DEPTH.with(Cell::get) >= MAX_HELP_DEPTH {
        return false;
    }
    let Some(inner) = CURRENT_POOL.with(|pool| pool.borrow().as_ref().and_then(Weak::upgrade))
    else {
        return false;
    };
    let Some(me) = current_worker_in(inner.id) else {
        return false;
    };
    let Some((task, stolen)) = inner.next_task(me) else {
        return false;
    };
    HELP_DEPTH.with(|depth| depth.set(depth.get() + 1));
    inner.run_task(me, task, stolen);
    HELP_DEPTH.with(|depth| depth.set(depth.get() - 1));
    true
}

struct Inner {
    id: u64,
    n_workers: usize,
    /// One shared injector per lane, each behind its own `POOL_STATE` lock.
    injectors: [RankedMutex<VecDeque<Task>>; N_LANES],
    /// Per-worker per-lane deques, flat-indexed `worker * N_LANES + lane`,
    /// each behind its own `POOL_STATE` lock.  Acquisitions are transient:
    /// same-rank nesting panics under the debug lock-rank guard.
    locals: Vec<RankedMutex<VecDeque<Task>>>,
    /// Wake-up epoch (rank `POOL_SLEEP`): bumped on every publish so a
    /// worker that found nothing can detect a racing push before parking.
    sleep: RankedMutex<u64>,
    work_available: RankedCondvar,
    shutdown: AtomicBool,
    metrics: Arc<EngineMetrics>,
}

impl Inner {
    fn slot(&self, worker: usize, lane: usize) -> usize {
        worker * N_LANES + lane
    }

    /// Finds the next task for worker `me`: lanes in priority order (the
    /// batch lane is only touched when no interactive task is ready), and
    /// within a lane own deque first (newest-first — the continuation of
    /// the job this worker just ran is the cache-hot one), then the lane's
    /// injector (oldest-first, submission order), then the *oldest* task of
    /// the first non-empty victim in [`steal_order`].  The `bool` says
    /// whether the task was stolen from a sibling.
    fn next_task(&self, me: usize) -> Option<(Task, bool)> {
        for lane in 0..N_LANES {
            let own = self.slot(me, lane);
            if let Some(task) = self.locals[own].lock().expect("pool deque lock").pop_back() {
                return Some((task, false));
            }
            if let Some(task) = self.injectors[lane]
                .lock()
                .expect("pool injector lock")
                .pop_front()
            {
                return Some((task, false));
            }
            for victim in steal_order(me, self.n_workers) {
                let vslot = self.slot(victim, lane);
                if let Some(task) = self.locals[vslot]
                    .lock()
                    .expect("pool deque lock")
                    .pop_front()
                {
                    return Some((task, true));
                }
            }
        }
        None
    }

    /// Publishes a wake-up: bump the epoch so a parking worker rescans, and
    /// wake one sleeper.
    fn bump_and_notify_one(&self) {
        *self.sleep.lock().expect("pool sleep lock") += 1;
        self.work_available.notify_one();
    }

    /// Reads the current wake-up epoch (transient acquisition — the
    /// guard never outlives the read).
    fn epoch(&self) -> u64 {
        *self.sleep.lock().expect("pool sleep lock")
    }

    fn run_task(&self, me: usize, task: Task, stolen: bool) {
        // Count the pick-up before executing: the task body may publish
        // the result a snapshotting thread is waiting on, and post-hoc
        // counters would race that snapshot.
        self.metrics.record_task_start(me, stolen);
        // cvcp: allow(D2, reason = "worker busy-time metrics; observability only")
        let busy_from = self.metrics.is_enabled().then(Instant::now);
        // Backstop: graph jobs catch their own panics to record a Failed
        // outcome; this guard keeps the worker alive even for raw tasks.
        let _ = catch_unwind(AssertUnwindSafe(task));
        if let Some(from) = busy_from {
            self.metrics
                .record_task_busy(me, from.elapsed().as_nanos() as u64);
        }
    }
}

/// Cloneable submission handle onto a pool's queues.
#[derive(Clone)]
pub(crate) struct PoolHandle {
    inner: Arc<Inner>,
}

impl PoolHandle {
    /// Enqueues a task on the given lane: on one of *this* pool's worker
    /// threads onto that worker's local deque, otherwise onto the lane's
    /// shared injector.
    pub(crate) fn spawn(&self, task: Task, lane: usize) {
        debug_assert!(lane < N_LANES);
        let inner = &self.inner;
        match WORKER.with(Cell::get) {
            Some((pool, me)) if pool == inner.id && me < inner.n_workers => {
                let own = inner.slot(me, lane);
                inner.locals[own]
                    .lock()
                    .expect("pool deque lock")
                    .push_back(task);
            }
            _ => inner.injectors[lane]
                .lock()
                .expect("pool injector lock")
                .push_back(task),
        }
        inner.bump_and_notify_one();
    }
}

/// A fixed-size worker pool.  Dropping the pool shuts it down after draining
/// already-queued tasks is *not* guaranteed — callers track completion via
/// their own channels (the graph executor does).
pub(crate) struct ThreadPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `n_threads` workers (at least one).  Worker activity (tasks
    /// executed, busy time, steals, parks) is recorded into `metrics`,
    /// which must have been built for at least `n_threads` workers.
    pub(crate) fn new(n_threads: usize, metrics: Arc<EngineMetrics>) -> Self {
        let n = n_threads.max(1);
        debug_assert!(metrics.n_workers() >= n, "metrics sized for the pool");
        let inner = Arc::new(Inner {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            n_workers: n,
            injectors: std::array::from_fn(|_| RankedMutex::new(&POOL_STATE, VecDeque::new())),
            locals: (0..n * N_LANES)
                .map(|_| RankedMutex::new(&POOL_STATE, VecDeque::new()))
                .collect(),
            sleep: RankedMutex::new(&POOL_SLEEP, 0),
            work_available: RankedCondvar::new(),
            shutdown: AtomicBool::new(false),
            metrics,
        });
        let workers = (0..n)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cvcp-engine-{index}"))
                    .spawn(move || worker_loop(&inner, index))
                    .expect("spawn engine worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// A cloneable submission handle.
    pub(crate) fn handle(&self) -> PoolHandle {
        PoolHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// `true` when the calling thread is one of this pool's workers.
    pub(crate) fn is_worker_thread(&self) -> bool {
        WORKER
            .with(Cell::get)
            .is_some_and(|(pool, _)| pool == self.inner.id)
    }

    /// This pool's identity, matchable against [`current_worker_in`] from
    /// any thread.
    pub(crate) fn id(&self) -> u64 {
        self.inner.id
    }

    /// Number of workers.
    #[cfg(test)]
    pub(crate) fn n_threads(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        *self.inner.sleep.lock().expect("pool sleep lock") += 1;
        self.inner.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, me: usize) {
    WORKER.with(|cell| cell.set(Some((inner.id, me))));
    CURRENT_POOL.with(|pool| *pool.borrow_mut() = Some(Arc::downgrade(inner)));
    loop {
        if let Some((task, stolen)) = inner.next_task(me) {
            inner.run_task(me, task, stolen);
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Park protocol, per-deque locks edition: baseline the wake-up
        // epoch, rescan once, and only sleep while the epoch is unchanged.
        // A producer pushes *then* bumps the epoch, so a task published
        // after the rescan forces the epoch check to fail and a task
        // published before it is found by the rescan — no lost wake-ups.
        let seen = inner.epoch();
        if let Some((task, stolen)) = inner.next_task(me) {
            inner.run_task(me, task, stolen);
            continue;
        }
        inner.metrics.record_park(me);
        let mut epoch = inner.sleep.lock().expect("pool sleep lock");
        while *epoch == seen && !inner.shutdown.load(Ordering::Acquire) {
            epoch = inner.work_available.wait(epoch).expect("pool condvar wait");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Mutex};

    const INTERACTIVE: usize = 0;
    const BATCH: usize = 1;

    fn pool_with_metrics(n: usize) -> (ThreadPool, Arc<EngineMetrics>) {
        let metrics = Arc::new(EngineMetrics::new(n.max(1), N_LANES));
        (ThreadPool::new(n, Arc::clone(&metrics)), metrics)
    }

    fn pool(n: usize) -> ThreadPool {
        pool_with_metrics(n).0
    }

    #[test]
    fn runs_submitted_tasks_on_all_workers() {
        let pool = pool(4);
        let handle = pool.handle();
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for i in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            let lane = i % N_LANES;
            handle.spawn(
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    tx.send(()).unwrap();
                }),
                lane,
            );
        }
        for _ in 0..64 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn panicking_task_does_not_kill_workers() {
        let pool = pool(2);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        handle.spawn(Box::new(|| panic!("boom")), INTERACTIVE);
        // Give the panic a chance to land first.
        std::thread::sleep(std::time::Duration::from_millis(20));
        handle.spawn(Box::new(move || tx.send(42).unwrap()), INTERACTIVE);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            42
        );
    }

    #[test]
    fn tasks_spawned_from_workers_are_executed() {
        let pool = pool(2);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        let inner_handle = handle.clone();
        handle.spawn(
            Box::new(move || {
                // spawned from a worker → lands on the local deque
                inner_handle.spawn(Box::new(move || tx.send(7).unwrap()), BATCH);
            }),
            BATCH,
        );
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            7
        );
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let pool = pool(0);
        assert_eq!(pool.n_threads(), 1);
    }

    #[test]
    fn steal_order_is_a_deterministic_rotation() {
        assert_eq!(steal_order(0, 4).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(steal_order(2, 4).collect::<Vec<_>>(), vec![3, 0, 1]);
        assert_eq!(steal_order(3, 4).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(steal_order(0, 1).count(), 0, "no self-steal in a pool of 1");
        // The schedule is a pure function of the worker id: identical on
        // every call, and each worker visits every sibling exactly once.
        for me in 0..8 {
            let first: Vec<_> = steal_order(me, 8).collect();
            let second: Vec<_> = steal_order(me, 8).collect();
            assert_eq!(first, second);
            let mut sorted = first.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).filter(|&i| i != me).collect::<Vec<_>>());
        }
    }

    #[test]
    fn blocked_workers_local_tasks_are_stolen_by_siblings() {
        // One worker parks on a gate *inside a task*, after pushing two
        // follow-ups onto its own local deque.  The other worker must steal
        // and run them while the owner is still blocked — per-worker deque
        // locks must not trap tasks on a busy worker.
        let pool = pool(2);
        let handle = pool.handle();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<&'static str>();
        let inner_handle = handle.clone();
        handle.spawn(
            Box::new(move || {
                for label in ["s1", "s2"] {
                    let done_tx = done_tx.clone();
                    inner_handle.spawn(Box::new(move || done_tx.send(label).unwrap()), BATCH);
                }
                gate_rx.recv().unwrap();
            }),
            BATCH,
        );
        let mut ran = Vec::new();
        for _ in 0..2 {
            ran.push(
                done_rx
                    .recv_timeout(std::time::Duration::from_secs(5))
                    .unwrap(),
            );
        }
        gate_tx.send(()).unwrap();
        ran.sort_unstable();
        assert_eq!(ran, vec!["s1", "s2"]);
    }

    #[test]
    fn help_run_one_task_is_a_no_op_off_pool_threads() {
        assert!(
            !help_run_one_task(),
            "non-worker threads have no pool to help"
        );
    }

    #[test]
    fn workers_help_run_ready_tasks_while_waiting() {
        // A worker blocked inside a task (waiting on the channel) calls
        // help_run_one_task in its wait loop and must execute the queued
        // sibling task itself — this is the cooperative-join primitive.
        let pool = pool(1);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel::<i32>();
        let inner_handle = handle.clone();
        handle.spawn(
            Box::new(move || {
                let tx2 = tx.clone();
                inner_handle.spawn(Box::new(move || tx2.send(11).unwrap()), BATCH);
                // The pool has one worker (this thread), so the spawned
                // task can only run if we help.
                while rx.try_recv().is_err() {
                    assert!(help_run_one_task(), "the queued task must be ready");
                }
            }),
            BATCH,
        );
        // Drop resolves only after the worker loop drains; reaching here
        // without a deadlock is the assertion.
        drop(pool);
    }

    #[test]
    fn interactive_lane_drains_before_queued_batch_tasks() {
        // One worker, fully deterministic: while the worker is blocked on a
        // gate task, three batch tasks and then two interactive tasks are
        // queued.  On release the worker must run the interactive tasks
        // first, even though the batch tasks were submitted earlier.
        let pool = pool(1);
        let handle = pool.handle();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        handle.spawn(
            Box::new(move || {
                started_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
            }),
            BATCH,
        );
        started_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let (done_tx, done_rx) = mpsc::channel::<()>();
        for label in ["b1", "b2", "b3"] {
            let order = Arc::clone(&order);
            let done_tx = done_tx.clone();
            handle.spawn(
                Box::new(move || {
                    order.lock().unwrap().push(label);
                    done_tx.send(()).unwrap();
                }),
                BATCH,
            );
        }
        for label in ["i1", "i2"] {
            let order = Arc::clone(&order);
            let done_tx = done_tx.clone();
            handle.spawn(
                Box::new(move || {
                    order.lock().unwrap().push(label);
                    done_tx.send(()).unwrap();
                }),
                INTERACTIVE,
            );
        }
        gate_tx.send(()).unwrap();
        for _ in 0..5 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .unwrap();
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec!["i1", "i2", "b1", "b2", "b3"],
            "interactive tasks must overtake earlier-queued batch tasks, FIFO within each lane"
        );
    }
}
