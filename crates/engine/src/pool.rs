//! A work-stealing thread pool built on `std::thread` + condvar wake-ups,
//! with two priority lanes.
//!
//! Each worker owns one local deque *per lane*; tasks spawned *from* a
//! worker go to that worker's deque for the task's lane (LIFO — the
//! continuation of a job is cache-hot), tasks submitted from outside go to
//! the lane's shared injector queue (FIFO), and idle workers steal the
//! *oldest* task from the most loaded sibling.  Workers always drain the
//! interactive lane (index 0) completely before touching the batch lane:
//! an interactive graph submitted while a large batch graph is queued
//! overtakes every batch job that has not started yet (see
//! [`crate::graph::Priority`]).  All queues live behind one mutex: with
//! `unsafe` forbidden workspace-wide a lock-free Chase–Lev deque is off the
//! table, and at this workload's job granularity (one clustering run per
//! job, ≥ 100 µs) the single lock is invisible in profiles — the *policy*
//! (interactive first, local LIFO, steal-oldest) is what matters.
//!
//! Panic isolation: a panicking task never takes down its worker; the panic
//! is caught and the worker returns to the queue loop, so a failed job
//! cannot poison the pool (verified by `tests/engine_determinism.rs`).

use crate::graph::N_LANES;
use cvcp_obs::lock_rank::POOL_STATE;
use cvcp_obs::{EngineMetrics, RankedCondvar, RankedMutex};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Source of unique pool identities (so a worker thread can tell *which*
/// pool it belongs to — the engine uses this to run graphs submitted from
/// its own workers inline instead of deadlocking the pool).
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `(pool id, worker index)` of the pool worker running on this thread.
    static WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// Index of the calling thread's worker *within the pool identified by
/// `pool_id`* — `None` on non-worker threads and on workers of other
/// pools.  Used to attribute trace spans to the right lane of the right
/// pool's timeline.
pub(crate) fn current_worker_in(pool_id: u64) -> Option<usize> {
    WORKER
        .with(Cell::get)
        .filter(|&(pool, _)| pool == pool_id)
        .map(|(_, index)| index)
}

struct State {
    injectors: [VecDeque<Task>; N_LANES],
    locals: Vec<[VecDeque<Task>; N_LANES]>,
    shutdown: bool,
}

struct Inner {
    id: u64,
    /// Rank [`POOL_STATE`]: acquired after the server's admission queue,
    /// before any cache lock (see `cvcp_obs::lock_rank`).
    state: RankedMutex<State>,
    work_available: RankedCondvar,
    metrics: Arc<EngineMetrics>,
}

/// Cloneable submission handle onto a pool's queues.
#[derive(Clone)]
pub(crate) struct PoolHandle {
    inner: Arc<Inner>,
}

impl PoolHandle {
    /// Enqueues a task on the given lane: on one of *this* pool's worker
    /// threads onto that worker's local deque, otherwise onto the lane's
    /// shared injector.
    pub(crate) fn spawn(&self, task: Task, lane: usize) {
        debug_assert!(lane < N_LANES);
        let mut state = self.inner.state.lock().expect("pool lock");
        match WORKER.with(Cell::get) {
            Some((pool, me)) if pool == self.inner.id && me < state.locals.len() => {
                state.locals[me][lane].push_back(task)
            }
            _ => state.injectors[lane].push_back(task),
        }
        drop(state);
        self.inner.work_available.notify_one();
    }
}

/// A fixed-size worker pool.  Dropping the pool shuts it down after draining
/// already-queued tasks is *not* guaranteed — callers track completion via
/// their own channels (the graph executor does).
pub(crate) struct ThreadPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `n_threads` workers (at least one).  Worker activity (tasks
    /// executed, busy time, steals, parks) is recorded into `metrics`,
    /// which must have been built for at least `n_threads` workers.
    pub(crate) fn new(n_threads: usize, metrics: Arc<EngineMetrics>) -> Self {
        let n = n_threads.max(1);
        debug_assert!(metrics.n_workers() >= n, "metrics sized for the pool");
        let inner = Arc::new(Inner {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            state: RankedMutex::new(
                &POOL_STATE,
                State {
                    injectors: std::array::from_fn(|_| VecDeque::new()),
                    locals: (0..n)
                        .map(|_| std::array::from_fn(|_| VecDeque::new()))
                        .collect(),
                    shutdown: false,
                },
            ),
            work_available: RankedCondvar::new(),
            metrics,
        });
        let workers = (0..n)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cvcp-engine-{index}"))
                    .spawn(move || worker_loop(&inner, index))
                    .expect("spawn engine worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// A cloneable submission handle.
    pub(crate) fn handle(&self) -> PoolHandle {
        PoolHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// `true` when the calling thread is one of this pool's workers.
    pub(crate) fn is_worker_thread(&self) -> bool {
        WORKER
            .with(Cell::get)
            .is_some_and(|(pool, _)| pool == self.inner.id)
    }

    /// This pool's identity, matchable against [`current_worker_in`] from
    /// any thread.
    pub(crate) fn id(&self) -> u64 {
        self.inner.id
    }

    /// Number of workers.
    #[cfg(test)]
    pub(crate) fn n_threads(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.inner.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Finds the next task for worker `me` on `lane`: own deque first
/// (newest-first — the continuation of the job this worker just ran is the
/// cache-hot one), then the lane's shared injector (oldest-first,
/// submission order), then the *oldest* task of the most loaded sibling.
/// The `bool` says whether the task was stolen from a sibling.
fn next_task_on_lane(state: &mut State, me: usize, lane: usize) -> Option<(Task, bool)> {
    if let Some(task) = state.locals[me][lane].pop_back() {
        return Some((task, false));
    }
    if let Some(task) = state.injectors[lane].pop_front() {
        return Some((task, false));
    }
    let victim = (0..state.locals.len())
        .filter(|&i| i != me)
        .max_by_key(|&i| state.locals[i][lane].len())
        .filter(|&i| !state.locals[i][lane].is_empty());
    victim.and_then(|v| state.locals[v][lane].pop_front().map(|t| (t, true)))
}

fn worker_loop(inner: &Inner, me: usize) {
    WORKER.with(|cell| cell.set(Some((inner.id, me))));
    let record = inner.metrics.is_enabled();
    loop {
        let (task, stolen) = {
            let mut state = inner.state.lock().expect("pool lock");
            'wait: loop {
                // Lanes in priority order: the batch lane is only touched
                // when no interactive task is queued anywhere.
                for lane in 0..N_LANES {
                    if let Some(found) = next_task_on_lane(&mut state, me, lane) {
                        break 'wait found;
                    }
                }
                if state.shutdown {
                    return;
                }
                inner.metrics.record_park(me);
                state = inner.work_available.wait(state).expect("pool condvar wait");
            }
        };
        // cvcp: allow(D2, reason = "worker busy-time metrics; observability only")
        let busy_from = record.then(Instant::now);
        // Backstop: graph jobs catch their own panics to record a Failed
        // outcome; this guard keeps the worker alive even for raw tasks.
        let _ = catch_unwind(AssertUnwindSafe(task));
        if let Some(from) = busy_from {
            inner
                .metrics
                .record_task(me, from.elapsed().as_nanos() as u64, stolen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Mutex};

    const INTERACTIVE: usize = 0;
    const BATCH: usize = 1;

    fn pool_with_metrics(n: usize) -> (ThreadPool, Arc<EngineMetrics>) {
        let metrics = Arc::new(EngineMetrics::new(n.max(1), N_LANES));
        (ThreadPool::new(n, Arc::clone(&metrics)), metrics)
    }

    fn pool(n: usize) -> ThreadPool {
        pool_with_metrics(n).0
    }

    #[test]
    fn runs_submitted_tasks_on_all_workers() {
        let pool = pool(4);
        let handle = pool.handle();
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for i in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            let lane = i % N_LANES;
            handle.spawn(
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    tx.send(()).unwrap();
                }),
                lane,
            );
        }
        for _ in 0..64 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn panicking_task_does_not_kill_workers() {
        let pool = pool(2);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        handle.spawn(Box::new(|| panic!("boom")), INTERACTIVE);
        // Give the panic a chance to land first.
        std::thread::sleep(std::time::Duration::from_millis(20));
        handle.spawn(Box::new(move || tx.send(42).unwrap()), INTERACTIVE);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            42
        );
    }

    #[test]
    fn tasks_spawned_from_workers_are_executed() {
        let pool = pool(2);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        let inner_handle = handle.clone();
        handle.spawn(
            Box::new(move || {
                // spawned from a worker → lands on the local deque
                inner_handle.spawn(Box::new(move || tx.send(7).unwrap()), BATCH);
            }),
            BATCH,
        );
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            7
        );
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let pool = pool(0);
        assert_eq!(pool.n_threads(), 1);
    }

    #[test]
    fn interactive_lane_drains_before_queued_batch_tasks() {
        // One worker, fully deterministic: while the worker is blocked on a
        // gate task, three batch tasks and then two interactive tasks are
        // queued.  On release the worker must run the interactive tasks
        // first, even though the batch tasks were submitted earlier.
        let pool = pool(1);
        let handle = pool.handle();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        handle.spawn(
            Box::new(move || {
                started_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
            }),
            BATCH,
        );
        started_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let (done_tx, done_rx) = mpsc::channel::<()>();
        for label in ["b1", "b2", "b3"] {
            let order = Arc::clone(&order);
            let done_tx = done_tx.clone();
            handle.spawn(
                Box::new(move || {
                    order.lock().unwrap().push(label);
                    done_tx.send(()).unwrap();
                }),
                BATCH,
            );
        }
        for label in ["i1", "i2"] {
            let order = Arc::clone(&order);
            let done_tx = done_tx.clone();
            handle.spawn(
                Box::new(move || {
                    order.lock().unwrap().push(label);
                    done_tx.send(()).unwrap();
                }),
                INTERACTIVE,
            );
        }
        gate_tx.send(()).unwrap();
        for _ in 0..5 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .unwrap();
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec!["i1", "i2", "b1", "b2", "b3"],
            "interactive tasks must overtake earlier-queued batch tasks, FIFO within each lane"
        );
    }
}
