//! A work-stealing thread pool built on `std::thread` + condvar wake-ups.
//!
//! Each worker owns a local deque; tasks spawned *from* a worker go to that
//! worker's deque (LIFO — the continuation of a job is cache-hot), tasks
//! submitted from outside go to a shared injector queue (FIFO), and idle
//! workers steal the *oldest* task from the most loaded sibling.  All queues
//! live behind one mutex: with `unsafe` forbidden workspace-wide a lock-free
//! Chase–Lev deque is off the table, and at this workload's job granularity
//! (one clustering run per job, ≥ 100 µs) the single lock is invisible in
//! profiles — the *policy* (local LIFO, steal-oldest) is what matters for
//! cache behaviour.
//!
//! Panic isolation: a panicking task never takes down its worker; the panic
//! is caught and the worker returns to the queue loop, so a failed job
//! cannot poison the pool (verified by `tests/engine_determinism.rs`).

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Source of unique pool identities (so a worker thread can tell *which*
/// pool it belongs to — the engine uses this to run graphs submitted from
/// its own workers inline instead of deadlocking the pool).
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `(pool id, worker index)` of the pool worker running on this thread.
    static WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

struct State {
    injector: VecDeque<Task>,
    locals: Vec<VecDeque<Task>>,
    shutdown: bool,
}

struct Inner {
    id: u64,
    state: Mutex<State>,
    work_available: Condvar,
}

/// Cloneable submission handle onto a pool's queues.
#[derive(Clone)]
pub(crate) struct PoolHandle {
    inner: Arc<Inner>,
}

impl PoolHandle {
    /// Enqueues a task: on one of *this* pool's worker threads onto that
    /// worker's local deque, otherwise onto the shared injector.
    pub(crate) fn spawn(&self, task: Task) {
        let mut state = self.inner.state.lock().expect("pool lock");
        match WORKER.with(Cell::get) {
            Some((pool, me)) if pool == self.inner.id && me < state.locals.len() => {
                state.locals[me].push_back(task)
            }
            _ => state.injector.push_back(task),
        }
        drop(state);
        self.inner.work_available.notify_one();
    }
}

/// A fixed-size worker pool.  Dropping the pool shuts it down after draining
/// already-queued tasks is *not* guaranteed — callers track completion via
/// their own channels (the graph executor does).
pub(crate) struct ThreadPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `n_threads` workers (at least one).
    pub(crate) fn new(n_threads: usize) -> Self {
        let n = n_threads.max(1);
        let inner = Arc::new(Inner {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(State {
                injector: VecDeque::new(),
                locals: (0..n).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
        });
        let workers = (0..n)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cvcp-engine-{index}"))
                    .spawn(move || worker_loop(&inner, index))
                    .expect("spawn engine worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// A cloneable submission handle.
    pub(crate) fn handle(&self) -> PoolHandle {
        PoolHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// `true` when the calling thread is one of this pool's workers.
    pub(crate) fn is_worker_thread(&self) -> bool {
        WORKER
            .with(Cell::get)
            .is_some_and(|(pool, _)| pool == self.inner.id)
    }

    /// Number of workers.
    #[cfg(test)]
    pub(crate) fn n_threads(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.inner.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &Inner, me: usize) {
    WORKER.with(|cell| cell.set(Some((inner.id, me))));
    loop {
        let task = {
            let mut state = inner.state.lock().expect("pool lock");
            loop {
                // Own deque first, newest-first: the continuation of the job
                // this worker just ran is the cache-hot one.
                if let Some(task) = state.locals[me].pop_back() {
                    break task;
                }
                // Then the shared injector, oldest-first (submission order).
                if let Some(task) = state.injector.pop_front() {
                    break task;
                }
                // Then steal the *oldest* task from the most loaded sibling.
                let victim = (0..state.locals.len())
                    .filter(|&i| i != me)
                    .max_by_key(|&i| state.locals[i].len())
                    .filter(|&i| !state.locals[i].is_empty());
                if let Some(v) = victim {
                    if let Some(task) = state.locals[v].pop_front() {
                        break task;
                    }
                }
                if state.shutdown {
                    return;
                }
                state = inner.work_available.wait(state).expect("pool condvar wait");
            }
        };
        // Backstop: graph jobs catch their own panics to record a Failed
        // outcome; this guard keeps the worker alive even for raw tasks.
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_submitted_tasks_on_all_workers() {
        let pool = ThreadPool::new(4);
        let handle = pool.handle();
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            handle.spawn(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..64 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn panicking_task_does_not_kill_workers() {
        let pool = ThreadPool::new(2);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        handle.spawn(Box::new(|| panic!("boom")));
        // Give the panic a chance to land first.
        std::thread::sleep(std::time::Duration::from_millis(20));
        handle.spawn(Box::new(move || tx.send(42).unwrap()));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            42
        );
    }

    #[test]
    fn tasks_spawned_from_workers_are_executed() {
        let pool = ThreadPool::new(2);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        let inner_handle = handle.clone();
        handle.spawn(Box::new(move || {
            // spawned from a worker → lands on the local deque
            inner_handle.spawn(Box::new(move || tx.send(7).unwrap()));
        }));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            7
        );
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.n_threads(), 1);
    }
}
