//! # cvcp-engine
//!
//! A deterministic, cache-aware parallel execution engine for CVCP model
//! selection (and any similarly shaped grid workload).
//!
//! CVCP scores every candidate parameter by n-fold cross-validation over
//! side information — an embarrassingly parallel grid of (parameter × fold
//! × replica) jobs that shares expensive intermediates (pairwise distance
//! matrices, per-`MinPts` density hierarchies, fold closures) across most
//! of the grid.  This crate provides the three pieces that turn that grid
//! into hardware-speed throughput:
//!
//! * [`Engine`] — a work-stealing thread pool over `std::thread` +
//!   channels.  One thread means *inline* execution (the sequential path);
//!   any thread count produces **bit-identical results**, because every job
//!   draws from its own RNG stream derived via [`SeededRng::fork_stream`]
//!   from the graph seed and the job's structural salt — never from
//!   execution order.
//! * [`JobGraph`] — a request is modelled as a job DAG: artifact jobs feed
//!   evaluation jobs feed a reduction job.  Failed jobs skip their
//!   dependents without poisoning the pool; graphs can be cancelled.
//! * [`ArtifactCache`] — a content-keyed, concurrency-deduplicated store so
//!   each artifact is computed once and shared (`Arc`) across folds,
//!   trials and concurrent requests.  The store is *sharded* (deterministic
//!   key-hash routing, one lock and one budget slice per shard) and a
//!   [`CacheConfig`] bounds the resident bytes/entries with ordered,
//!   O(1)-per-victim eviction ([`EvictionPolicy`]: LRU or cost-benefit), so
//!   long-lived serving engines run within a fixed memory budget without
//!   ever changing results.
//!
//! Batch submission ([`Engine::submit`] / [`Engine::run_batch`])
//! multiplexes many selection requests over one pool — the seam for a
//! future serving layer.
//!
//! ```
//! use cvcp_engine::{Engine, JobGraph};
//!
//! let engine = Engine::new(4);
//! let mut graph: JobGraph<f64> = JobGraph::new(42);
//! let artifact = graph.add_job(&[], |_ctx| 21.0);
//! graph.add_job(&[artifact], |ctx| {
//!     // dependencies are guaranteed to have run; RNG streams are
//!     // per-job and thread-count invariant
//!     let _u = ctx.rng().uniform();
//!     2.0
//! });
//! let values = engine.run_graph(graph).expect_all("demo");
//! assert_eq!(values[0] * values[1], 42.0);
//! ```
//!
//! [`SeededRng::fork_stream`]: cvcp_data::rng::SeededRng::fork_stream

#![warn(missing_docs)]

pub mod cache;
mod engine;
pub mod graph;
mod pool;

pub use cache::{
    fingerprint_indices, fingerprint_matrix, AdmissionPolicy, ArtifactCache, ArtifactKey,
    ArtifactSize, CacheConfig, CacheStats, CostProfile, CostProfileEntry, EvictionPolicy,
    Fingerprint, FingerprintBuilder, KindLatencySnapshot, ShardStats, DEFAULT_REBALANCE_INTERVAL,
    MAX_SHARDS,
};
pub use engine::{Engine, GraphHandle};
pub use graph::{CancelToken, GraphResult, JobCtx, JobGraph, JobId, JobOutcome, Priority, N_LANES};

// The observability vocabulary (histograms, metrics snapshots, traces,
// profiles) is re-exported whole so downstream crates need no direct
// `cvcp-obs` dependency.
pub use cvcp_obs as obs;
pub use cvcp_obs::{
    EngineMetrics, GraphProfile, GraphTrace, HistogramSnapshot, JobSpan, MetricsSnapshot,
    SpanRecorder, WorkerOccupancy, WorkerSnapshot,
};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cache::{ArtifactCache, ArtifactKey, ArtifactSize, CacheConfig, EvictionPolicy};
    pub use crate::engine::Engine;
    pub use crate::graph::{CancelToken, JobCtx, JobGraph, Priority};
}
