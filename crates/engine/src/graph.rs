//! Deterministic job DAGs.
//!
//! A model-selection request is modelled as a directed acyclic graph of
//! jobs: artifact jobs (distance matrices, density hierarchies, fold
//! closures) feed evaluation jobs (one per parameter × fold) which feed a
//! reduction job.  [`JobGraph`] builds such a graph; the engine executes it
//! on its pool (or inline for the one-thread case).
//!
//! Determinism: every job receives its own RNG stream, derived from the
//! graph's base generator and the job's *salt* via
//! [`SeededRng::fork_stream`] — a pure function of (base state, salt), not
//! of execution order.  Results are therefore bit-identical at any thread
//! count; only wall-clock time changes.
//!
//! Acyclicity is guaranteed by construction: [`JobId`]s are only handed out
//! by [`JobGraph::add_job`], so dependency edges can only point at
//! already-added jobs.

use crate::cache::ArtifactCache;
use cvcp_data::rng::SeededRng;
use cvcp_obs::GraphTrace;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Scheduling lane of a submitted graph.
///
/// The engine's worker pool keeps two lanes of queues and always drains
/// the [`Priority::Interactive`] lane first: jobs of an interactive graph
/// overtake *queued* (not yet started) jobs of any batch graph, so a
/// latency-sensitive selection request is never stuck behind a large
/// experiment fan-out.  Within a lane, queues keep their usual order
/// (local LIFO, injector FIFO, steal-oldest).
///
/// Priority is pure scheduling: every job draws from its own salted RNG
/// stream, so results are **bit-identical across lanes** — only waiting
/// time changes.  Note that the lane is strict: batch work only runs while
/// no interactive job is queued, so a saturating interactive stream can
/// starve batch graphs (acceptable for this workload, where interactive
/// requests are short).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive work (served selection requests); drained first.
    #[default]
    Interactive,
    /// Throughput work (experiment fan-outs); drained when no interactive
    /// job is queued.
    Batch,
}

/// Number of scheduling lanes — one queue set per [`Priority`] variant,
/// drained in ascending [`Priority::lane_index`] order.  Shared by the
/// engine's pool and any priority-aware queue in front of it (e.g. the
/// serving front-end's admission queue), so the mapping cannot drift.
pub const N_LANES: usize = 2;

impl Priority {
    /// Parses a lane name (`interactive` / `batch`); `None` otherwise.
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "interactive" => Some(Self::Interactive),
            "batch" => Some(Self::Batch),
            _ => None,
        }
    }

    /// The canonical lane name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Interactive => "interactive",
            Self::Batch => "batch",
        }
    }

    /// The lane's queue index, in `0..`[`N_LANES`]: lanes are drained in
    /// ascending index order, so interactive (0) always precedes batch
    /// (1).
    pub fn lane_index(self) -> usize {
        match self {
            Self::Interactive => 0,
            Self::Batch => 1,
        }
    }
}

/// A shareable cancellation flag.
///
/// A token can be bound to a [`JobGraph`] before submission
/// ([`JobGraph::set_cancel_token`]) or obtained from a running graph's
/// handle (`GraphHandle::cancel_token`).  Cancelling it skips every job
/// that has not started yet — running jobs finish normally — and the same
/// token can be shared by any number of observers (e.g. a serving
/// front-end's per-connection disconnect watcher), independent of the
/// graph handle's lifetime.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation.  Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Identifier of a job within one [`JobGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(pub(crate) usize);

impl JobId {
    /// Position of the job in the graph (insertion order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Execution context handed to every job.
pub struct JobCtx {
    pub(crate) cache: Arc<ArtifactCache>,
    pub(crate) rng: SeededRng,
    pub(crate) index: usize,
}

impl JobCtx {
    /// The engine's shared artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The shared artifact cache as an owned handle.
    pub fn cache_arc(&self) -> Arc<ArtifactCache> {
        Arc::clone(&self.cache)
    }

    /// This job's private RNG stream (independent of execution order).
    pub fn rng(&mut self) -> &mut SeededRng {
        &mut self.rng
    }

    /// Position of this job in its graph.
    pub fn job_index(&self) -> usize {
        self.index
    }
}

pub(crate) type JobFn<T> = Box<dyn FnOnce(&mut JobCtx) -> T + Send + 'static>;

pub(crate) struct GraphJob<T> {
    pub(crate) f: JobFn<T>,
    pub(crate) deps: Vec<usize>,
    pub(crate) salt: u64,
}

/// A DAG of jobs, all returning the same result type `T`.
pub struct JobGraph<T> {
    pub(crate) base_rng: SeededRng,
    pub(crate) jobs: Vec<GraphJob<T>>,
    pub(crate) cancel_token: Option<CancelToken>,
    pub(crate) priority: Priority,
    /// Span recording for this graph (opt-in; `None` = no tracing).
    pub(crate) trace_name: Option<String>,
    /// Per-job display labels for traces; indexed by job, resized lazily
    /// so untraced graphs never allocate here.
    pub(crate) labels: Vec<String>,
}

impl<T> JobGraph<T> {
    /// An empty graph whose job RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_base_rng(SeededRng::new(seed))
    }

    /// An empty graph whose job RNG streams derive from an existing
    /// generator state (frozen at this point; the caller's generator is not
    /// advanced).
    pub fn with_base_rng(base_rng: SeededRng) -> Self {
        Self {
            base_rng,
            jobs: Vec::new(),
            cancel_token: None,
            priority: Priority::default(),
            trace_name: None,
            labels: Vec::new(),
        }
    }

    /// Enables span recording for this graph's execution: every executed
    /// job gets a [`cvcp_obs::JobSpan`] (enqueue/start/end ticks, worker,
    /// lane, cache hits), and the finished [`GraphTrace`] is returned on
    /// [`GraphResult::trace`].  `name` becomes the trace's display name
    /// (and, downstream, its file stem).  Tracing is timing-only: results
    /// stay bit-identical with it on or off.
    pub fn enable_trace(&mut self, name: impl Into<String>) {
        self.trace_name = Some(name.into());
    }

    /// `true` once [`enable_trace`](Self::enable_trace) was called.
    pub fn trace_enabled(&self) -> bool {
        self.trace_name.is_some()
    }

    /// Attaches a human-readable label to a job, shown in exported
    /// timelines (e.g. `t0/p9/f3` for trial 0, parameter 9, fold 3).
    /// Labels are only meaningful together with
    /// [`enable_trace`](Self::enable_trace).
    pub fn set_job_label(&mut self, id: JobId, label: impl Into<String>) {
        if self.labels.len() < self.jobs.len() {
            self.labels.resize(self.jobs.len(), String::new());
        }
        self.labels[id.0] = label.into();
    }

    /// Binds an external [`CancelToken`] to this graph: when the token is
    /// cancelled (before or after submission), jobs that have not started
    /// are skipped.  Without a bound token the graph gets a private one,
    /// reachable through its handle.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel_token = Some(token);
    }

    /// Chooses the scheduling lane the graph's jobs are queued on
    /// (default: [`Priority::Interactive`]).  Pure scheduling — results
    /// are bit-identical across lanes.
    pub fn set_priority(&mut self, priority: Priority) {
        self.priority = priority;
    }

    /// The graph's scheduling lane.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Adds a job depending on `deps`, salted by its insertion index.
    pub fn add_job<F>(&mut self, deps: &[JobId], f: F) -> JobId
    where
        F: FnOnce(&mut JobCtx) -> T + Send + 'static,
    {
        let salt = self.jobs.len() as u64;
        self.add_salted_job(deps, salt, f)
    }

    /// Adds a job with an explicit RNG-stream salt.  Use a *structural* salt
    /// (e.g. `param_index << 20 | fold`) when the same logical job must get
    /// the same stream across differently-shaped graphs.
    pub fn add_salted_job<F>(&mut self, deps: &[JobId], salt: u64, f: F) -> JobId
    where
        F: FnOnce(&mut JobCtx) -> T + Send + 'static,
    {
        let id = JobId(self.jobs.len());
        self.jobs.push(GraphJob {
            f: Box::new(f),
            deps: deps.iter().map(|d| d.0).collect(),
            salt,
        });
        id
    }

    /// Number of jobs in the graph.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the graph has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Terminal state of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Completed(T),
    /// The job panicked; the message is the panic payload.
    Failed(String),
    /// The job was cancelled, or one of its dependencies did not complete.
    Skipped,
}

impl<T> JobOutcome<T> {
    /// The completed value, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// `true` for [`JobOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed(_))
    }
}

/// Outcome of a whole graph, in job-insertion order.
#[derive(Debug)]
pub struct GraphResult<T> {
    /// One outcome per job, in insertion order.
    pub outcomes: Vec<JobOutcome<T>>,
    /// The recorded execution timeline, when the graph was submitted with
    /// [`JobGraph::enable_trace`]; `None` otherwise.
    pub trace: Option<GraphTrace>,
}

impl<T> GraphResult<T> {
    /// `true` when every job completed.
    pub fn all_completed(&self) -> bool {
        self.outcomes.iter().all(JobOutcome::is_completed)
    }

    /// The first failure message, if any job failed.
    pub fn first_failure(&self) -> Option<&str> {
        self.outcomes.iter().find_map(|o| match o {
            JobOutcome::Failed(msg) => Some(msg.as_str()),
            _ => None,
        })
    }

    /// Unwraps every job's value.
    ///
    /// # Panics
    ///
    /// Panics (with `context`) if any job failed or was skipped.
    pub fn expect_all(self, context: &str) -> Vec<T> {
        self.outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| match o {
                JobOutcome::Completed(v) => v,
                JobOutcome::Failed(msg) => panic!("{context}: job {i} failed: {msg}"),
                JobOutcome::Skipped => panic!("{context}: job {i} was skipped"),
            })
            .collect()
    }
}
