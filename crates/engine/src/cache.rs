//! Content-keyed artifact cache with a sharded, bounded-memory lifecycle.
//!
//! CVCP model selection evaluates a grid of (parameter × fold × replica)
//! cells, and many expensive intermediates — pairwise distance matrices,
//! per-`MinPts` density hierarchies, transitive closures, seeding
//! neighbourhoods — are *identical* across large parts of that grid.  The
//! [`ArtifactCache`] stores those intermediates behind content-derived keys
//! so that every artifact is computed exactly once per engine, no matter how
//! many folds, trials or concurrent requests ask for it.
//!
//! Long-lived serving engines cannot let the cache grow monotonically, so
//! the store is *size-bounded*: a [`CacheConfig`] caps the resident bytes
//! (measured per artifact via [`ArtifactSize`]) and/or the resident entry
//! count, and artifacts are evicted when a budget is exceeded.  Eviction is
//! purely a time/space trade: an evicted artifact is recomputed on next
//! use, results never change.
//!
//! ## Sharding
//!
//! The store is split into `CacheConfig::shards` independent shards
//! (a power of two), selected by a **deterministic** content hash of the
//! [`ArtifactKey`] — identical across runs, thread counts and processes
//! (see [`ArtifactCache::shard_of`]).  Each shard has its own lock and its
//! own slice of the global byte/entry budgets, so concurrent requests for
//! unrelated keys never contend on one map lock.
//!
//! ## Ordered eviction
//!
//! Each shard keeps its committed entries on an intrusive, index-linked
//! LRU list over a slab (no `unsafe`): lookups and commits splice in O(1),
//! and the eviction victim is the list head — **O(1) per victim**, never a
//! scan over the resident set.  Two policies are available
//! ([`EvictionPolicy`]): plain LRU (the deterministic default) and an
//! opt-in cost-benefit policy that weighs victims by their recompute cost
//! per byte (the BJI-style benefit/space ratio), using per-artifact compute
//! times recorded at commit.
//!
//! ## Adaptive shard budgets
//!
//! Static even budget slices starve hot shards under tight budgets (the
//! routing hash spreads *keys* evenly, not *working sets*).  When more
//! than one shard is bounded, a periodic rebalancer shifts budget toward
//! the shards with the highest observed **miss-cost** — the accumulated
//! smoothed recompute cost of their misses, i.e. miss counts weighted by
//! the per-kind [`CostProfile`] EWMAs — subject to a configurable floor
//! per shard and with hysteresis (slices move at most halfway toward
//! their target per round, and the miss-cost signal decays geometrically)
//! so slices cannot thrash.  The trigger is deterministic: every
//! [`CacheConfig::rebalance_interval`] cache operations, never wall
//! clock.  Rebalancing moves budget, never values — results stay
//! bit-identical under any slice assignment.
//!
//! ## Admission control
//!
//! Under [`AdmissionPolicy::Cost`], an artifact is only admitted at
//! commit time when its smoothed (EWMA) recompute cost clears a
//! store-cost threshold derived from its byte size and the shard's
//! current pressure: cheap-to-recompute bulky artifacts are handed to the
//! caller but never displace residents.  Rejections are counted per shard
//! ([`ShardStats::admission_rejections`]).  Like eviction, admission is a
//! pure time/space trade — the returned `Arc` is identical either way.
//!
//! Concurrency contract: two threads requesting the same key race to a
//! per-key [`OnceLock`]; the loser blocks until the winner's value is ready,
//! so an artifact is never computed twice *while in flight* and concurrent
//! callers always observe the same `Arc` (see the pointer-equality tests).
//! Only fully-committed entries are eviction candidates — an in-flight
//! `get_or_compute` can never have its slot torn out from under it, and
//! callers holding an `Arc` to an evicted artifact keep a valid value (the
//! bytes are merely no longer counted as resident).  If a computation
//! panics, its in-flight slot is removed on unwind, so the key stays
//! retryable and the map never accumulates zombie entries.

use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use cvcp_data::DataMatrix;
use cvcp_obs::lock_rank::{CACHE_PROFILE, CACHE_SHARD};
use cvcp_obs::{Counter, HistogramSnapshot, LogHistogram, RankedCondvar, RankedMutex};

thread_local! {
    /// `(hits, misses)` observed by the *current thread* since the last
    /// reset — the per-job cache attribution used by span tracing.  Jobs
    /// run one at a time per worker thread, so the engine resets the pair
    /// before a traced job and takes it after; the two `Cell` updates per
    /// cache access are free compared to the shard lock either side.
    static THREAD_CACHE_EVENTS: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Zeroes the calling thread's cache hit/miss attribution counters.
pub(crate) fn reset_thread_cache_events() {
    THREAD_CACHE_EVENTS.with(|c| c.set((0, 0)));
}

/// Returns and zeroes the calling thread's `(hits, misses)` since the last
/// reset.
pub(crate) fn take_thread_cache_events() -> (u64, u64) {
    THREAD_CACHE_EVENTS.with(|c| c.replace((0, 0)))
}

fn note_thread_cache_event(hit: bool) {
    THREAD_CACHE_EVENTS.with(|c| {
        let (hits, misses) = c.get();
        c.set(if hit {
            (hits + 1, misses)
        } else {
            (hits, misses + 1)
        })
    });
}

thread_local! {
    /// Nesting depth of in-flight `compute` closures on this thread.  A
    /// joiner only *helps* (runs other pool tasks while waiting, see
    /// [`crate::pool::help_run_one_task`]) at depth 0: a winner that
    /// recursed into the pool could pick up a task that joins the very
    /// artifact this thread is computing and deadlock on itself.
    static COMPUTE_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// RAII bump of [`COMPUTE_DEPTH`] — unwinds correctly when `compute`
/// panics, so a caught panic can never wedge helping off for the thread.
struct ComputeDepthGuard;

impl ComputeDepthGuard {
    fn enter() -> Self {
        COMPUTE_DEPTH.with(|depth| depth.set(depth.get() + 1));
        Self
    }
}

impl Drop for ComputeDepthGuard {
    fn drop(&mut self) {
        COMPUTE_DEPTH.with(|depth| depth.set(depth.get() - 1));
    }
}

/// A 64-bit content fingerprint (FNV-1a over the value's raw bytes).
pub type Fingerprint = u64;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a hasher over `u64` words.
#[derive(Debug, Clone, Copy)]
pub struct FingerprintBuilder {
    state: u64,
}

impl FingerprintBuilder {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Mixes one 64-bit word into the fingerprint.
    #[inline]
    pub fn write_u64(&mut self, word: u64) -> &mut Self {
        for byte in word.to_le_bytes() {
            self.state ^= byte as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Mixes an `f64` by bit pattern (so `-0.0` and `0.0` differ — fine for
    /// cache identity, which only needs "same bytes ⇒ same key").
    #[inline]
    pub fn write_f64(&mut self, value: f64) -> &mut Self {
        self.write_u64(value.to_bits())
    }

    /// The finished fingerprint.
    pub fn finish(&self) -> Fingerprint {
        self.state
    }
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Content fingerprint of a data matrix (shape + every value's bit pattern).
pub fn fingerprint_matrix(matrix: &DataMatrix) -> Fingerprint {
    let mut h = FingerprintBuilder::new();
    h.write_u64(matrix.n_rows() as u64);
    h.write_u64(matrix.n_cols() as u64);
    for &v in matrix.as_slice() {
        h.write_f64(v);
    }
    h.finish()
}

/// Content fingerprint of a slice of indices (used for fold membership,
/// labelled subsets, constraint endpoints…).
pub fn fingerprint_indices(indices: &[usize]) -> Fingerprint {
    let mut h = FingerprintBuilder::new();
    h.write_u64(indices.len() as u64);
    for &i in indices {
        h.write_u64(i as u64);
    }
    h.finish()
}

/// Identity of a cached artifact.
///
/// Keys combine the *content* fingerprint of the inputs with the structural
/// parameters of the computation, so equal inputs share work across folds,
/// trials and concurrent requests while different inputs can never collide
/// semantically (fingerprints are 64-bit content hashes; collisions are
/// astronomically unlikely at this workload's cardinalities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKey {
    /// Full pairwise distance matrix of a data set under the default metric.
    PairwiseDistances {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
    },
    /// Per-object core distances for a `MinPts`.
    CoreDistances {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
        /// The density smoothing parameter.
        min_pts: usize,
    },
    /// Mutual-reachability MST for a `MinPts`.
    MutualReachabilityMst {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
        /// The density smoothing parameter.
        min_pts: usize,
    },
    /// Condensed density hierarchy for a (`MinPts`, minimum cluster size).
    DensityHierarchy {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
        /// The density smoothing parameter.
        min_pts: usize,
        /// Minimum cluster size of the condensed tree.
        min_cluster_size: usize,
    },
    /// Transitive closure of one cross-validation fold's training side
    /// information.
    FoldClosure {
        /// Fingerprint of the side information realisation.
        side: Fingerprint,
        /// Fold index.
        fold: usize,
    },
    /// MPCKMeans seeding structures (closed constraint set + must-link
    /// neighbourhood centroid candidates) for one side-information
    /// realisation — invariant in the cluster count `k`, so one artifact
    /// serves the whole parameter sweep of a fold.
    MpckSeeding {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
        /// Fingerprint of the constraint realisation.
        constraints: Fingerprint,
        /// Whether the seeding was computed over the transitive closure of
        /// the constraints (must match the algorithm configuration).
        use_closure: bool,
    },
    /// Escape hatch for downstream crates: a caller-defined domain plus a
    /// caller-computed fingerprint.
    Custom {
        /// Caller-chosen namespace (pick a random constant per use site).
        domain: u64,
        /// Caller-computed content fingerprint.
        key: Fingerprint,
    },
}

impl ArtifactKey {
    /// The artifact-kind names a [`CostProfile`] is keyed by, in canonical
    /// order.
    pub const KIND_NAMES: [&'static str; 7] = [
        "pairwise_distances",
        "core_distances",
        "mutual_reachability_mst",
        "density_hierarchy",
        "fold_closure",
        "mpck_seeding",
        "custom",
    ];

    /// The key's artifact-kind name (the granularity compute-time cost
    /// profiles are learned and persisted at).
    pub fn kind_name(&self) -> &'static str {
        Self::KIND_NAMES[self.kind_index()]
    }

    /// Index of the key's kind into [`ArtifactKey::KIND_NAMES`] — also the
    /// index of its row in the cache's per-kind latency histograms.
    pub fn kind_index(&self) -> usize {
        match self {
            ArtifactKey::PairwiseDistances { .. } => 0,
            ArtifactKey::CoreDistances { .. } => 1,
            ArtifactKey::MutualReachabilityMst { .. } => 2,
            ArtifactKey::DensityHierarchy { .. } => 3,
            ArtifactKey::FoldClosure { .. } => 4,
            ArtifactKey::MpckSeeding { .. } => 5,
            ArtifactKey::Custom { .. } => 6,
        }
    }

    /// Deterministic routing hash over the key's content — deliberately
    /// *not* `std::hash::Hash` (whose `RandomState` seeds differ per map),
    /// so shard assignment is identical across runs, threads and processes
    /// (the future seam for consistent hashing across serving hosts).
    fn route_hash(&self) -> u64 {
        let mut h = FingerprintBuilder::new();
        match *self {
            ArtifactKey::PairwiseDistances { data } => {
                h.write_u64(1).write_u64(data);
            }
            ArtifactKey::CoreDistances { data, min_pts } => {
                h.write_u64(2).write_u64(data).write_u64(min_pts as u64);
            }
            ArtifactKey::MutualReachabilityMst { data, min_pts } => {
                h.write_u64(3).write_u64(data).write_u64(min_pts as u64);
            }
            ArtifactKey::DensityHierarchy {
                data,
                min_pts,
                min_cluster_size,
            } => {
                h.write_u64(4)
                    .write_u64(data)
                    .write_u64(min_pts as u64)
                    .write_u64(min_cluster_size as u64);
            }
            ArtifactKey::FoldClosure { side, fold } => {
                h.write_u64(5).write_u64(side).write_u64(fold as u64);
            }
            ArtifactKey::MpckSeeding {
                data,
                constraints,
                use_closure,
            } => {
                h.write_u64(6)
                    .write_u64(data)
                    .write_u64(constraints)
                    .write_u64(use_closure as u64);
            }
            ArtifactKey::Custom { domain, key } => {
                h.write_u64(7).write_u64(domain).write_u64(key);
            }
        }
        h.finish()
    }
}

/// Approximate resident size of a cached artifact, in bytes.
///
/// The cache charges every artifact against [`CacheConfig::max_bytes`] using
/// this trait, measured once at insertion.  Implementations should return
/// the artifact's *owned* footprint — stack size plus owned heap — and may
/// approximate (`len` instead of `capacity`, padding ignored); budgets are
/// resource knobs, not exact allocators.
pub trait ArtifactSize {
    /// Approximate owned size in bytes (stack + heap).
    fn artifact_bytes(&self) -> usize;
}

macro_rules! scalar_artifact_size {
    ($($t:ty),* $(,)?) => {
        $(impl ArtifactSize for $t {
            fn artifact_bytes(&self) -> usize {
                std::mem::size_of::<Self>()
            }
        })*
    };
}

scalar_artifact_size!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char
);

impl<T: ArtifactSize> ArtifactSize for Vec<T> {
    fn artifact_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.iter().map(ArtifactSize::artifact_bytes).sum::<usize>()
    }
}

impl ArtifactSize for String {
    fn artifact_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.len()
    }
}

impl<A: ArtifactSize, B: ArtifactSize> ArtifactSize for (A, B) {
    fn artifact_bytes(&self) -> usize {
        self.0.artifact_bytes() + self.1.artifact_bytes()
    }
}

/// How a shard picks its eviction victim when a budget is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used committed artifact (the list head) —
    /// deterministic and O(1); the default.
    #[default]
    Lru,
    /// Among a bounded window of the least-recently-used artifacts, evict
    /// the one with the lowest recompute-cost per byte (the BJI-style
    /// benefit/space ratio, using per-artifact compute times recorded at
    /// commit).  Cheap-to-recompute bulky artifacts go first; expensive
    /// dense ones are retained beyond their LRU position.  Still O(1) per
    /// victim (the window is constant-sized), but victim choice depends on
    /// measured wall-clock compute times — cached *values* are unaffected,
    /// results stay bit-identical.
    CostBenefit,
}

impl EvictionPolicy {
    /// Parses a policy name (`lru`, `cost` / `cost_benefit` /
    /// `cost-benefit`); `None` for anything else.
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "lru" => Some(Self::Lru),
            "cost" | "cost_benefit" | "cost-benefit" => Some(Self::CostBenefit),
            _ => None,
        }
    }

    /// The canonical name of the policy.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Lru => "lru",
            Self::CostBenefit => "cost_benefit",
        }
    }
}

/// Whether a freshly computed artifact is worth storing at all.
///
/// Admission is decided at commit time, after the value has been computed
/// and handed to the caller — rejecting an artifact can never change a
/// result, it only means the next request recomputes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Admit every artifact that fits its shard's budget slice (the
    /// default).
    #[default]
    Always,
    /// Admit only artifacts whose smoothed (EWMA) recompute cost exceeds
    /// a store-cost threshold derived from the artifact's byte size and
    /// the shard's current fill pressure (`ArtifactCache::admission_threshold`):
    /// caching is a purchase of future recompute time with resident bytes,
    /// and artifacts cheaper to recompute than to keep are declined.
    Cost,
}

impl AdmissionPolicy {
    /// Parses a policy name (`always`, `cost`); `None` for anything else.
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "always" => Some(Self::Always),
            "cost" => Some(Self::Cost),
            _ => None,
        }
    }

    /// The canonical name of the policy.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Always => "always",
            Self::Cost => "cost",
        }
    }
}

/// Hard ceiling on the shard count (itself a power of two).
pub const MAX_SHARDS: usize = 1024;

/// Default number of cache operations between adaptive shard-budget
/// rebalances (see [`CacheConfig::rebalance_interval`]).  Operation
/// counts, not wall clock: the trigger is deterministic for a fixed
/// operation sequence and reads no clocks on the hot path.  The interval
/// is deliberately small — a rebalance is eight uncontended lock
/// acquisitions plus integer arithmetic, and a CVCP selection drives only
/// a few artifact lookups per fold, so waiting hundreds of operations
/// would leave hot shards starved for most of a short workload.
pub const DEFAULT_REBALANCE_INTERVAL: u64 = 32;

/// Default [`CacheConfig::rebalance_floor_percent`]: every shard keeps at
/// least this percentage of its even budget split, so a cold shard can
/// always re-earn residency (a zero-budget shard would never observe the
/// misses that justify growing it back).  Deliberately low: with n
/// shards the floors pin `floor × n` of the budget on shards that may
/// have no demand at all, and a typical artifact is comparable to a
/// whole even slice — budget parked on cold shards is budget that
/// cannot push a hot shard past its artifact size.
pub const DEFAULT_REBALANCE_FLOOR_PERCENT: u32 = 10;

/// Store-cost charged per KiB of artifact at zero shard pressure, in
/// nanoseconds — the exchange rate [`AdmissionPolicy::Cost`] prices
/// resident bytes at.  The threshold doubles as the shard fills (see
/// [`ArtifactCache::admission_threshold`]).
const ADMISSION_NANOS_PER_KIB: u64 = 200;

/// Weight of the newest measurement in the per-kind compute-time EWMA:
/// `ewma' = (1 - w)·ewma + w·measured` (the first sample of a kind sets
/// the EWMA outright).
const COST_EWMA_WEIGHT: f64 = 0.3;

/// One artifact kind's learned compute-time average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfileEntry {
    /// The artifact-kind name (see [`ArtifactKey::kind_name`]).
    pub kind: &'static str,
    /// Exponentially-weighted moving average of the kind's compute time,
    /// in nanoseconds.
    pub ewma_nanos: f64,
    /// Number of measurements folded into the EWMA (including any carried
    /// over from a preloaded profile).
    pub samples: u64,
}

/// Per-artifact-kind compute-time EWMAs — the recompute-cost knowledge the
/// [`EvictionPolicy::CostBenefit`] policy scores victims with.
///
/// The profile is updated at every commit and can be exported
/// ([`ArtifactCache::cost_profile`]) and preloaded into a fresh cache
/// ([`ArtifactCache::preload_cost_profile`]), so a cold serving engine
/// starts with the weights a previous process learned instead of treating
/// its first artifact of each kind as the sole evidence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostProfile {
    /// One entry per observed kind, in [`ArtifactKey::KIND_NAMES`] order.
    pub entries: Vec<CostProfileEntry>,
}

/// In-memory per-kind EWMA state.
#[derive(Debug, Clone, Copy, Default)]
struct KindCost {
    ewma_nanos: f64,
    samples: u64,
}

/// Memory budget and layout of an [`ArtifactCache`].
///
/// `None` means "unbounded" for either budget knob.  Budgets apply to
/// *resident* (fully committed) artifacts: in-flight computations are never
/// evicted, so the map may transiently hold more uninitialized slots than
/// `max_entries`.
///
/// With `shards > 1` the global budgets start split evenly — each shard
/// enforces `max_bytes / shards` and `max_entries / shards` — and, when
/// `rebalance_interval > 0`, the adaptive rebalancer periodically moves
/// slice budget toward the shards with the highest observed miss-cost;
/// the slices always sum to at most the global budgets, so those are
/// never exceeded.  A nonzero `max_entries` smaller than the
/// shard count clamps the shard count down (each shard keeps at least one
/// entry of budget) rather than silently disabling caching.  An artifact
/// larger than its shard's byte slice (or any artifact, when `max_entries`
/// is zero) bypasses residency entirely — it is computed, handed to the
/// caller and immediately counted as evicted, without disturbing the
/// resident set.  Pick `max_bytes` at least `shards ×` the largest
/// artifact you want resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident artifact bytes (as measured by [`ArtifactSize`]).
    pub max_bytes: Option<usize>,
    /// Maximum number of resident artifacts.
    pub max_entries: Option<usize>,
    /// Number of independent shards.  Normalized by the cache to a power of
    /// two in `1..=`[`MAX_SHARDS`].
    pub shards: usize,
    /// Eviction victim selection policy.
    pub policy: EvictionPolicy,
    /// Commit-time admission policy.
    pub admission: AdmissionPolicy,
    /// Cache operations between adaptive shard-budget rebalances; `0`
    /// disables rebalancing (shards keep their even slices).  Only
    /// meaningful with more than one shard and at least one budget.
    pub rebalance_interval: u64,
    /// Percentage of the even budget split every shard keeps as a floor
    /// under rebalancing (clamped to `0..=100` when the cache is built).
    pub rebalance_floor_percent: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            max_bytes: None,
            max_entries: None,
            shards: 1,
            policy: EvictionPolicy::Lru,
            admission: AdmissionPolicy::Always,
            rebalance_interval: DEFAULT_REBALANCE_INTERVAL,
            rebalance_floor_percent: DEFAULT_REBALANCE_FLOOR_PERCENT,
        }
    }
}

impl CacheConfig {
    /// No budgets: the cache grows until cleared (the pre-eviction default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Caps the resident artifact bytes.
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Caps the number of resident artifacts.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = Some(max_entries);
        self
    }

    /// Sets the shard count (normalized to a power of two in
    /// `1..=`[`MAX_SHARDS`] when the cache is built).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the eviction policy.
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the commit-time admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the adaptive rebalance trigger: every `interval` cache
    /// operations (`0` disables rebalancing).
    pub fn with_rebalance_interval(mut self, interval: u64) -> Self {
        self.rebalance_interval = interval;
        self
    }

    /// Sets the per-shard budget floor as a percentage of the even split
    /// (clamped to `0..=100` when the cache is built).
    pub fn with_rebalance_floor_percent(mut self, percent: u32) -> Self {
        self.rebalance_floor_percent = percent;
        self
    }

    /// `true` when neither budget is set.
    pub fn is_unbounded(&self) -> bool {
        self.max_bytes.is_none() && self.max_entries.is_none()
    }

    /// The shard count the cache will actually use: the next power of two
    /// of `shards`, clamped to `1..=`[`MAX_SHARDS`].
    pub fn normalized_shards(&self) -> usize {
        self.shards.clamp(1, MAX_SHARDS).next_power_of_two()
    }
}

/// A stored artifact: the type-erased value plus its measured byte size.
type Stored = (Arc<dyn Any + Send + Sync>, usize);
type Slot = Arc<OnceLock<Stored>>;

/// Sentinel slab index ("null pointer" of the intrusive list).
const NIL: usize = usize::MAX;

/// How many LRU-end candidates [`EvictionPolicy::CostBenefit`] compares per
/// eviction (constant, so eviction stays O(1) per victim).
const COST_BENEFIT_WINDOW: usize = 8;

/// One slab node: the shared slot plus the intrusive LRU links.
#[derive(Debug)]
struct Node {
    key: ArtifactKey,
    slot: Slot,
    /// `Some(bytes)` once the artifact is computed *and* committed to the
    /// resident accounting; `None` while the computation is in flight.
    bytes: Option<usize>,
    /// Estimated recompute cost in nanoseconds, recorded at commit: the
    /// measured wall-clock compute time folded into the artifact kind's
    /// EWMA (see [`CostProfile`]) — what [`EvictionPolicy::CostBenefit`]
    /// scores victims with.
    cost_nanos: u64,
    /// Previous node on the LRU list (towards the LRU head), or [`NIL`].
    prev: usize,
    /// Next node on the LRU list (towards the MRU tail), or [`NIL`].
    next: usize,
    /// Whether the node is linked on the LRU list (committed entries only).
    in_lru: bool,
}

/// The lock-protected part of one shard: a slab of nodes, a key index and
/// an intrusive LRU list threaded through the committed nodes.
#[derive(Debug)]
struct ShardMap {
    index: HashMap<ArtifactKey, usize>,
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    /// Least-recently-used committed node, or [`NIL`].
    head: usize,
    /// Most-recently-used committed node, or [`NIL`].
    tail: usize,
    /// Sum of `bytes` over committed entries.
    resident_bytes: usize,
    /// Number of committed entries.
    resident_entries: usize,
    /// High-water mark of `resident_bytes` (after budget enforcement).
    peak_resident_bytes: usize,
}

impl Default for ShardMap {
    fn default() -> Self {
        Self {
            index: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            resident_bytes: 0,
            resident_entries: 0,
            peak_resident_bytes: 0,
        }
    }
}

impl ShardMap {
    fn node(&self, i: usize) -> &Node {
        self.nodes[i].as_ref().expect("live slab node")
    }

    fn node_mut(&mut self, i: usize) -> &mut Node {
        self.nodes[i].as_mut().expect("live slab node")
    }

    /// Places `node` into a free slab slot and returns its index.
    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.nodes[i].is_none(), "free-list slot occupied");
                self.nodes[i] = Some(node);
                i
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        }
    }

    /// Removes node `i` from the slab (it must already be off the LRU
    /// list) and recycles its slot.
    fn release(&mut self, i: usize) -> Node {
        let node = self.nodes[i].take().expect("released slab node live");
        debug_assert!(!node.in_lru, "released node still linked");
        self.free.push(i);
        node
    }

    /// Splices node `i` onto the MRU tail of the LRU list.  O(1).
    fn attach_tail(&mut self, i: usize) {
        debug_assert!(!self.node(i).in_lru, "node already linked");
        let old_tail = self.tail;
        {
            let node = self.node_mut(i);
            node.prev = old_tail;
            node.next = NIL;
            node.in_lru = true;
        }
        if old_tail == NIL {
            self.head = i;
        } else {
            self.node_mut(old_tail).next = i;
        }
        self.tail = i;
    }

    /// Unlinks node `i` from the LRU list.  O(1).
    fn detach(&mut self, i: usize) {
        let (prev, next) = {
            let node = self.node_mut(i);
            debug_assert!(node.in_lru, "detaching unlinked node");
            let links = (node.prev, node.next);
            node.prev = NIL;
            node.next = NIL;
            node.in_lru = false;
            links
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.node_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.node_mut(next).prev = prev;
        }
    }

    /// Re-stamps recency: moves a committed node to the MRU tail (no-op for
    /// in-flight nodes, which are not on the list).
    fn touch(&mut self, i: usize) {
        if self.node(i).in_lru {
            self.detach(i);
            self.attach_tail(i);
        }
    }

    /// The [`EvictionPolicy::CostBenefit`] victim: among the first
    /// [`COST_BENEFIT_WINDOW`] nodes from the LRU head, the one with the
    /// lowest recompute-cost per byte; ties keep the least recent.  The
    /// MRU tail — the just-committed artifact — is never sampled unless it
    /// is the only resident, matching LRU's "the fresh artifact is evicted
    /// last" contract.
    fn cost_benefit_victim(&self) -> usize {
        let mut best = NIL;
        let mut cursor = self.head;
        let mut seen = 0;
        while cursor != NIL && seen < COST_BENEFIT_WINDOW {
            if cursor == self.tail && best != NIL {
                break;
            }
            let candidate = self.node(cursor);
            if best == NIL || cost_ratio_less(candidate, self.node(best)) {
                best = cursor;
            }
            cursor = candidate.next;
            seen += 1;
        }
        best
    }
}

/// One rebalance round's new budget slices: every shard keeps a floor of
/// `floor_percent`% of the even split, and the rest is targeted
/// proportionally to the shards' recompute-demand `weights` (the even
/// split when there is no demand signal at all).
///
/// The steps toward the target are deliberately asymmetric.  Shrinking
/// is gentle — one sixteenth of the gap per round — because shrinking is
/// how residents die: when decay pushes a slice below its residency, the
/// shard's LRU evicts from the cold end, which drains artifacts that
/// will never be requested again (the distributed analogue of the
/// unsharded cache's global LRU) but must not outrun a workload phase
/// and evict residents the next phase re-uses.  (Clamping the shrink at
/// the shard's residency instead freezes the allocation: dead residents
/// are indistinguishable from phase-idle ones, so every slice pins its
/// first-arrival contents and the cache degenerates to static slicing.)
/// Growth takes three quarters of the gap but is funded purely by what
/// this round's shrinks released (scaled down proportionally when
/// over-subscribed), so the slice sum never exceeds `total` — urgent
/// growth does not wait for the periodic round anyway, it goes through
/// the commit-time slice borrower.  The rounding remainder goes to the
/// heaviest shard (first among ties), so when `current` sums to `total`
/// the result does too.
fn rebalanced_slices(
    total: usize,
    current: &[usize],
    weights: &[u64],
    floor_percent: u32,
) -> Vec<usize> {
    let n = current.len();
    debug_assert_eq!(n, weights.len());
    let even = total / n;
    let floor = ((even * floor_percent as usize) / 100).clamp(usize::from(even > 0), even.max(1));
    let sum_w: u128 = weights.iter().map(|&w| w as u128).sum();
    let target: Vec<usize> = if sum_w == 0 {
        vec![even; n]
    } else {
        let spread = total - floor * n;
        weights
            .iter()
            .map(|&w| floor + ((spread as u128 * w as u128) / sum_w) as usize)
            .collect()
    };
    let mut next = current.to_vec();
    let mut released = 0usize;
    let mut wants: Vec<usize> = vec![0; n];
    let mut wanted = 0usize;
    for i in 0..n {
        let (c, t) = (current[i], target[i]);
        if t < c {
            // `div_ceil` guarantees progress on tiny gaps.
            let step = (c - t).div_ceil(16);
            next[i] = c - step;
            released += step;
        } else {
            wants[i] = (3 * (t - c)) / 4;
            wanted += wants[i];
        }
    }
    if wanted > 0 {
        for i in 0..n {
            let grant = if wanted <= released {
                wants[i]
            } else {
                ((wants[i] as u128 * released as u128) / wanted as u128) as usize
            };
            next[i] += grant;
        }
    }
    let assigned: usize = next.iter().sum();
    if let Some(remainder) = total.checked_sub(assigned) {
        if remainder > 0 {
            let hottest = weights
                .iter()
                .enumerate()
                .max_by(|(ai, aw), (bi, bw)| aw.cmp(bw).then(bi.cmp(ai)))
                .map_or(0, |(i, _)| i);
            next[hottest] += remainder;
        }
    }
    next
}

/// `a.cost/a.bytes < b.cost/b.bytes`, exactly, via u128 cross
/// multiplication (no float rounding in victim selection).
fn cost_ratio_less(a: &Node, b: &Node) -> bool {
    let (a_bytes, b_bytes) = (
        a.bytes.expect("LRU node committed"),
        b.bytes.expect("LRU node committed"),
    );
    (a.cost_nanos as u128) * (b_bytes as u128) < (b.cost_nanos as u128) * (a_bytes as u128)
}

/// One independent cache shard: its map plus its lock-free counters.
#[derive(Debug)]
struct Shard {
    /// Rank [`CACHE_SHARD`]: shard locks never nest (neither with each
    /// other nor under the cost-profile lock — see `cvcp_obs::lock_rank`).
    map: RankedMutex<ShardMap>,
    /// Parks joiners of in-flight computations (companion to `map`).
    /// Notified whenever an in-flight entry resolves: the winner committed
    /// a value, its panic guard removed the entry, or `clear` dropped it.
    join_cv: RankedCondvar,
    /// The shard's *current* slice of [`CacheConfig::max_bytes`]
    /// (`usize::MAX` = unbounded).  Starts at the even split; moved by the
    /// adaptive rebalancer.  An atomic rather than map state so the
    /// rebalancer can read every shard's slice without taking (equal-rank)
    /// shard locks together; writers store it under the shard's map lock.
    byte_slice: AtomicUsize,
    /// The shard's current slice of [`CacheConfig::max_entries`]
    /// (`usize::MAX` = unbounded).
    entry_slice: AtomicUsize,
    /// Accumulated smoothed recompute demand on this shard, in
    /// nanoseconds: misses add the recompute cost actually paid, hits add
    /// the cost the resident spared.  (Miss-only weighting is unstable —
    /// a shard serving hits accrues no weight, loses its budget, evicts
    /// its residents, and only re-earns the budget by missing.)  This is
    /// the rebalancer's weight signal, halved (geometric decay) each time
    /// it is read so old pressure fades.  Artifacts too large to ever fit
    /// a slice (see `ArtifactCache::reachable_byte_slice`) contribute
    /// nothing: budget cannot help them.
    demand_nanos: AtomicU64,
    /// Relaxed mirror of the shard map's `resident_bytes`, written under
    /// the shard lock wherever the map field changes.  Lets the
    /// commit-time slice borrower read every other shard's *idle*
    /// headroom (slice − residents) without touching equal-rank shard
    /// locks.  Momentarily stale reads are benign: a victim shrunk
    /// slightly below its residency is re-clamped by `enforce_budget` on
    /// its own next commit.
    resident_bytes_hint: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    admission_rejections: Counter,
}

impl Default for Shard {
    fn default() -> Self {
        Self {
            map: RankedMutex::new(&CACHE_SHARD, ShardMap::default()),
            join_cv: RankedCondvar::new(),
            byte_slice: AtomicUsize::new(usize::MAX),
            entry_slice: AtomicUsize::new(usize::MAX),
            demand_nanos: AtomicU64::new(0),
            resident_bytes_hint: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            admission_rejections: Counter::new(),
        }
    }
}

impl Shard {
    /// The shard's current byte-budget slice (`None` = unbounded).
    fn byte_slice(&self) -> Option<usize> {
        match self.byte_slice.load(Ordering::Relaxed) {
            usize::MAX => None,
            v => Some(v),
        }
    }

    /// The shard's current entry-budget slice (`None` = unbounded).
    fn entry_slice(&self) -> Option<usize> {
        match self.entry_slice.load(Ordering::Relaxed) {
            usize::MAX => None,
            v => Some(v),
        }
    }
}

/// Removes the in-flight entry left behind by a panicked `compute` (the
/// regression this guards: a panic inside `get_or_compute` used to leave a
/// permanently uncommitted entry in the map — never an eviction candidate,
/// invisible to `len()`, accumulating forever).  Disarmed on success; on
/// unwind it removes the entry only if it is still *this* computation's
/// uninitialized slot, so a concurrent retry that won a value is kept.
struct InFlightGuard<'a> {
    shard: &'a Shard,
    key: ArtifactKey,
    slot: &'a Slot,
    armed: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        {
            let mut map = self.shard.map.lock().expect("artifact cache shard lock");
            if let Some(&i) = map.index.get(&self.key) {
                let node = map.node(i);
                if Arc::ptr_eq(&node.slot, self.slot)
                    && node.bytes.is_none()
                    && node.slot.get().is_none()
                {
                    debug_assert!(!node.in_lru);
                    map.index.remove(&self.key);
                    map.release(i);
                }
            }
        }
        // Joiners parked on this computation must re-claim (and possibly
        // become the new winner) — the value is never coming.
        self.shard.join_cv.notify_all();
    }
}

/// Per-shard counters plus a snapshot of the shard's residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Lookups this shard answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (or found nothing).
    pub misses: u64,
    /// Artifacts evicted to stay within the shard's budget slice.
    pub evictions: u64,
    /// Total bytes released by evictions.
    pub evicted_bytes: u64,
    /// Resident (committed) artifacts at snapshot time.
    pub resident_entries: usize,
    /// Resident artifact bytes at snapshot time.
    pub resident_bytes: usize,
    /// High-water mark of the shard's resident bytes.
    pub peak_resident_bytes: usize,
    /// Commits declined by the admission policy (the artifact was handed
    /// to the caller but never made resident).
    pub admission_rejections: u64,
    /// The shard's *current* byte-budget slice as assigned by the
    /// adaptive rebalancer (`None` = unbounded).
    pub byte_slice: Option<usize>,
    /// The shard's current entry-budget slice (`None` = unbounded).
    pub entry_slice: Option<usize>,
}

/// Cache hit/miss/eviction counters plus a snapshot of residency,
/// aggregated over all shards (see [`ArtifactCache::shard_stats`] for the
/// per-shard breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the artifact (or, for [`ArtifactCache::get`],
    /// found nothing).
    pub misses: u64,
    /// Artifacts evicted to stay within the configured budgets.
    pub evictions: u64,
    /// Total bytes released by evictions.
    pub evicted_bytes: u64,
    /// Resident (committed) artifacts at snapshot time.
    pub resident_entries: usize,
    /// Resident artifact bytes at snapshot time.
    pub resident_bytes: usize,
    /// Sum of the per-shard high-water marks of resident bytes.  With one
    /// shard this is exactly the cache-lifetime peak.  With several
    /// shards under adaptive rebalancing, the marks are reached at
    /// different times under different slice assignments, so their sum
    /// can exceed the global budget even though the *instantaneous*
    /// resident total never does (the live slices always sum to at most
    /// the budget — see [`ArtifactCache::assert_accounting_consistent`]).
    pub peak_resident_bytes: usize,
    /// Number of independent shards.
    pub shards: usize,
    /// Commits declined by the admission policy, summed over shards.
    pub admission_rejections: u64,
    /// Adaptive shard-budget rebalance rounds performed so far.
    pub rebalances: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent, content-keyed, size-bounded store of shared computation
/// artifacts — sharded, with ordered O(1) eviction per shard.
#[derive(Debug)]
pub struct ArtifactCache {
    shards: Box<[Shard]>,
    shard_mask: usize,
    policy: EvictionPolicy,
    config: CacheConfig,
    /// Cache operations since creation — the deterministic rebalance
    /// trigger (every [`CacheConfig::rebalance_interval`] operations;
    /// never a clock read).
    ops: AtomicU64,
    /// Single-flight latch for the rebalancer: concurrent triggers skip
    /// rather than queue.
    rebalancing: AtomicBool,
    /// The largest byte slice the rebalancer could ever assign one shard
    /// (the global budget minus every other shard's floor; the even split
    /// when rebalancing is disabled; `usize::MAX` when unbounded).
    /// Artifacts above this can never become resident anywhere, so their
    /// misses are excluded from the demand signal — budget cannot help
    /// them, and letting their recompute cost capture budget starves the
    /// shards budget *could* help.
    reachable_byte_slice: usize,
    /// The byte-slice floor each shard is guaranteed (see
    /// [`CacheConfig::rebalance_floor_percent`]); the commit-time slice
    /// borrower never shrinks a victim below it.  `0` when the byte
    /// budget is unbounded or rebalancing is disabled.
    byte_floor: usize,
    /// Completed rebalance rounds.
    rebalances: Counter,
    /// Per-kind compute-time EWMAs (one global map — commits are rare
    /// relative to lookups, so the extra lock is off the hot hit path).
    /// Rank [`CACHE_PROFILE`], the innermost lock of the workspace.
    profile: RankedMutex<HashMap<&'static str, KindCost>>,
    /// Per-kind get/compute latency histograms, indexed by
    /// [`ArtifactKey::kind_index`].  Always-on: recording is a few relaxed
    /// atomic adds per access.
    latencies: Box<[KindLatency]>,
}

/// Always-on latency histograms for one artifact kind.
#[derive(Debug, Default)]
struct KindLatency {
    /// Duration of lookups that found a value (including any wait for an
    /// in-flight computation to finish — the cache-stall time).
    get: LogHistogram,
    /// Duration of `compute` closures run on misses.
    compute: LogHistogram,
}

/// A plain copy of one kind's latency histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindLatencySnapshot {
    /// The artifact kind, from [`ArtifactKey::KIND_NAMES`].
    pub kind: &'static str,
    /// Hit-path lookup latency (including in-flight waits).
    pub get: HistogramSnapshot,
    /// Miss-path compute latency.
    pub compute: HistogramSnapshot,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::with_config(CacheConfig::default())
    }
}

impl ArtifactCache {
    /// An empty, unbounded, single-shard cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with the given budget/shard configuration.  The
    /// shard count is normalized per [`CacheConfig::normalized_shards`],
    /// then halved (down to 1) while a nonzero `max_entries` would slice
    /// to zero entries per shard — more shards than entry budget would
    /// silently bypass *every* commit, i.e. disable caching.  (A byte
    /// budget cannot be pre-clamped the same way: artifact sizes are only
    /// known at commit time — pick `max_bytes` ≥ `shards ×` the largest
    /// artifact you want resident.)
    pub fn with_config(config: CacheConfig) -> Self {
        let mut n = config.normalized_shards();
        if let Some(e) = config.max_entries {
            while n > 1 && e / n == 0 {
                n /= 2;
            }
        }
        let config = CacheConfig {
            shards: n,
            rebalance_floor_percent: config.rebalance_floor_percent.min(100),
            ..config
        };
        let shards: Box<[Shard]> = (0..n).map(|_| Shard::default()).collect();
        // Every shard starts at the even split; the rebalancer moves the
        // slices from there as miss-cost evidence accumulates.
        let byte_slice = config.max_bytes.map_or(usize::MAX, |b| b / n);
        let entry_slice = config.max_entries.map_or(usize::MAX, |e| e / n);
        for shard in shards.iter() {
            shard.byte_slice.store(byte_slice, Ordering::Relaxed);
            shard.entry_slice.store(entry_slice, Ordering::Relaxed);
        }
        let mut byte_floor = 0;
        let reachable_byte_slice = config.max_bytes.map_or(usize::MAX, |total| {
            let even = total / n;
            if n == 1 {
                total
            } else if config.rebalance_interval == 0 {
                even
            } else {
                let floor = ((even * config.rebalance_floor_percent as usize) / 100)
                    .clamp(usize::from(even > 0), even.max(1));
                byte_floor = floor;
                total - floor * (n - 1)
            }
        });
        Self {
            shards,
            shard_mask: n - 1,
            policy: config.policy,
            config,
            ops: AtomicU64::new(0),
            rebalancing: AtomicBool::new(false),
            reachable_byte_slice,
            byte_floor,
            rebalances: Counter::new(),
            profile: RankedMutex::new(&CACHE_PROFILE, HashMap::new()),
            latencies: ArtifactKey::KIND_NAMES
                .iter()
                .map(|_| KindLatency::default())
                .collect(),
        }
    }

    /// Per-kind get/compute latency histogram snapshots, in
    /// [`ArtifactKey::KIND_NAMES`] order (one row per kind, including
    /// kinds with no samples yet).
    pub fn kind_latency_snapshots(&self) -> Vec<KindLatencySnapshot> {
        ArtifactKey::KIND_NAMES
            .iter()
            .zip(self.latencies.iter())
            .map(|(&kind, lat)| KindLatencySnapshot {
                kind,
                get: lat.get.snapshot(),
                compute: lat.compute.snapshot(),
            })
            .collect()
    }

    /// Snapshot of the per-kind compute-time EWMAs, in
    /// [`ArtifactKey::KIND_NAMES`] order (kinds with no samples omitted).
    pub fn cost_profile(&self) -> CostProfile {
        let profile = self.profile.lock().expect("cost profile lock");
        CostProfile {
            entries: ArtifactKey::KIND_NAMES
                .iter()
                .filter_map(|&kind| {
                    profile.get(kind).map(|c| CostProfileEntry {
                        kind,
                        ewma_nanos: c.ewma_nanos,
                        samples: c.samples,
                    })
                })
                .collect(),
        }
    }

    /// Seeds the per-kind compute-time EWMAs from a previously exported
    /// [`CostProfile`], so a cold cache scores its first
    /// [`EvictionPolicy::CostBenefit`] victims with learned weights
    /// instead of single-sample measurements.  Unknown kind names are
    /// ignored; entries without samples are ignored too.  Victim choice is
    /// a pure time/space trade — preloading can never change cached
    /// values or results.
    pub fn preload_cost_profile(&self, profile: &CostProfile) {
        let mut map = self.profile.lock().expect("cost profile lock");
        for entry in &profile.entries {
            if entry.samples == 0 || !entry.ewma_nanos.is_finite() || entry.ewma_nanos < 0.0 {
                continue;
            }
            if let Some(&kind) = ArtifactKey::KIND_NAMES.iter().find(|&&k| k == entry.kind) {
                map.insert(
                    kind,
                    KindCost {
                        ewma_nanos: entry.ewma_nanos,
                        samples: entry.samples,
                    },
                );
            }
        }
    }

    /// Folds one measured compute time into the key's kind EWMA and
    /// returns the smoothed estimate — the recompute cost recorded on the
    /// committed node.  Smoothing keeps one noisy wall-clock measurement
    /// (a loaded machine, a cold file cache) from dominating victim
    /// selection, and lets a preloaded profile inform the first
    /// evictions of a cold cache.
    fn smoothed_cost(&self, key: &ArtifactKey, measured_nanos: u64) -> u64 {
        let mut map = self.profile.lock().expect("cost profile lock");
        let entry = map.entry(key.kind_name()).or_default();
        entry.samples = entry.samples.saturating_add(1);
        entry.ewma_nanos = if entry.samples == 1 {
            measured_nanos as f64
        } else {
            (1.0 - COST_EWMA_WEIGHT) * entry.ewma_nanos + COST_EWMA_WEIGHT * measured_nanos as f64
        };
        entry.ewma_nanos as u64
    }

    /// The cache's configuration (with the shard count normalized).
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Number of independent shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to — a pure function of the key's
    /// content and the shard count, identical across runs, thread counts
    /// and processes (the determinism the sharded tests pin).
    pub fn shard_of(&self, key: &ArtifactKey) -> usize {
        // Fibonacci-mix the FNV routing hash and take high bits: FNV's low
        // bits alone distribute poorly for small structured inputs.
        ((key.route_hash().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & self.shard_mask
    }

    fn shard_for(&self, key: &ArtifactKey) -> &Shard {
        &self.shards[self.shard_of(key)]
    }

    /// Returns the cached artifact for `key`, computing it with `compute` on
    /// first use.  Concurrent callers for the same key **join the in-flight
    /// computation cooperatively** — never computing it twice — and then
    /// share the same `Arc`: a pool worker that would otherwise idle runs
    /// other ready pool tasks while it waits (so a convoy of sibling fold
    /// jobs behind one hierarchy build turns into throughput instead of
    /// blocked threads), and any other thread parks on the shard's condvar
    /// until the winner commits.
    ///
    /// When a budget is configured, committing a new artifact evicts
    /// resident artifacts of the key's shard (victims per the configured
    /// [`EvictionPolicy`], O(1) each) until the shard's budget slice holds
    /// again.  An artifact that alone exceeds the byte slice bypasses
    /// residency — it is counted as immediately evicted and the resident
    /// set is left untouched (the returned `Arc` stays valid either way).
    ///
    /// If `compute` panics, the panic propagates, the in-flight entry is
    /// removed, and the key remains retryable.
    ///
    /// # Panics
    ///
    /// Panics if the same key was previously populated with a different type
    /// (keys are expected to map 1:1 to artifact types).
    pub fn get_or_compute<T, F>(&self, key: ArtifactKey, compute: F) -> Arc<T>
    where
        T: Send + Sync + ArtifactSize + 'static,
        F: FnOnce() -> T,
    {
        let value = self.get_or_compute_unnoted(key, compute);
        // Counted after all shard locks are released: a rebalance
        // triggered here takes shard locks one at a time itself.
        self.note_op();
        value
    }

    fn get_or_compute_unnoted<T, F>(&self, key: ArtifactKey, compute: F) -> Arc<T>
    where
        T: Send + Sync + ArtifactSize + 'static,
        F: FnOnce() -> T,
    {
        // cvcp: allow(D2, reason = "cache lookup-latency histogram; observability only")
        let lookup_from = Instant::now();
        let shard = self.shard_for(&key);
        let mut compute = Some(compute);
        // Claim outcome for one attempt; a `Join` that resolves without a
        // value (winner panicked, cache cleared) loops back to re-claim.
        enum Claim {
            Hit(Stored),
            Winner(Slot),
            Join(Slot),
        }
        loop {
            let claim = {
                let mut map = shard.map.lock().expect("artifact cache shard lock");
                match map.index.get(&key).copied() {
                    Some(i) => {
                        map.touch(i);
                        // A hit's value is the recompute it spared: the
                        // resident keeps attracting the budget that keeps
                        // it resident.  (Uncommitted in-flight nodes carry
                        // cost 0 — joiners add nothing here; the winner's
                        // commit feeds the full cost.)
                        shard
                            .demand_nanos
                            .fetch_add(map.node(i).cost_nanos, Ordering::Relaxed);
                        let slot = map.node(i).slot.clone();
                        match slot.get() {
                            Some(stored) => Claim::Hit(stored.clone()),
                            None => Claim::Join(slot),
                        }
                    }
                    None => {
                        let slot: Slot = Arc::default();
                        let i = map.alloc(Node {
                            key,
                            slot: Arc::clone(&slot),
                            bytes: None,
                            cost_nanos: 0,
                            prev: NIL,
                            next: NIL,
                            in_lru: false,
                        });
                        map.index.insert(key, i);
                        Claim::Winner(slot)
                    }
                }
            };
            let latency = &self.latencies[key.kind_index()];
            let stored = match claim {
                Claim::Hit(stored) => stored,
                Claim::Winner(slot) => {
                    // The shard lock is released before the (potentially
                    // slow) computation, so unrelated keys never serialise
                    // behind each other; the guard cleans up the in-flight
                    // entry — and wakes joiners — on unwind.
                    let mut guard = InFlightGuard {
                        shard,
                        key,
                        slot: &slot,
                        armed: true,
                    };
                    // cvcp: allow(D2, reason = "compute-cost EWMA feeding the cost-benefit evictor; affects only what is cached, never what is computed")
                    let started = Instant::now();
                    let depth = ComputeDepthGuard::enter();
                    let value = Arc::new((compute
                        .take()
                        .expect("only the winner consumes `compute`"))(
                    ));
                    drop(depth);
                    let cost_nanos =
                        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    let bytes = value.artifact_bytes();
                    let stored: Stored = (Arc::clone(&value) as Arc<dyn Any + Send + Sync>, bytes);
                    let won = slot.set(stored).is_ok();
                    debug_assert!(won, "an in-flight slot is initialised only by its inserter");
                    guard.armed = false;
                    shard.misses.fetch_add(1, Ordering::Relaxed);
                    note_thread_cache_event(false);
                    latency.compute.record(cost_nanos);
                    // `commit` re-takes the shard lock, ordering the slot
                    // publication above against every joiner's under-lock
                    // pre-park check — the notification can never be lost.
                    self.commit(shard, key, &slot, bytes, cost_nanos);
                    shard.join_cv.notify_all();
                    return value;
                }
                Claim::Join(slot) => match self.join_in_flight(shard, &key, &slot) {
                    Some(stored) => stored,
                    None => continue,
                },
            };
            shard.hits.fetch_add(1, Ordering::Relaxed);
            note_thread_cache_event(true);
            latency
                .get
                .record(u64::try_from(lookup_from.elapsed().as_nanos()).unwrap_or(u64::MAX));
            let (value, _) = stored;
            return value
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("artifact type mismatch for cache key {key:?}"));
        }
    }

    /// Waits for another caller's in-flight computation of `key` to publish
    /// a value into `slot`.  A pool worker that is not itself inside a
    /// `compute` closure *helps* — runs ready pool tasks while it waits —
    /// instead of sleeping; any other thread parks on the shard's join
    /// condvar.  Returns `None` when the in-flight entry vanished without a
    /// value (the winner panicked, or the cache was cleared), in which case
    /// the caller must re-claim the key.
    fn join_in_flight(&self, shard: &Shard, key: &ArtifactKey, slot: &Slot) -> Option<Stored> {
        loop {
            if let Some(stored) = slot.get() {
                return Some(stored.clone());
            }
            if COMPUTE_DEPTH.with(Cell::get) == 0 && crate::pool::help_run_one_task() {
                continue;
            }
            // Nothing to help with: park until the winner publishes or the
            // entry vanishes.  Both pre-wait checks run under the shard
            // lock, and every resolution path takes that lock before
            // notifying, so the wake-up cannot be lost.
            let mut map = shard.map.lock().expect("artifact cache shard lock");
            loop {
                if slot.get().is_some() {
                    break;
                }
                let in_flight = map
                    .index
                    .get(key)
                    .copied()
                    .is_some_and(|i| Arc::ptr_eq(&map.node(i).slot, slot));
                if !in_flight {
                    drop(map);
                    return slot.get().cloned();
                }
                map = shard.join_cv.wait(map).expect("artifact cache shard lock");
            }
            drop(map);
        }
    }

    /// Returns the artifact for `key` if it is already cached (a hit when a
    /// computed value is present, a miss otherwise; never computes or
    /// blocks on an in-flight computation).
    pub fn get<T: Send + Sync + 'static>(&self, key: ArtifactKey) -> Option<Arc<T>> {
        let value = self.get_unnoted(key);
        self.note_op();
        value
    }

    fn get_unnoted<T: Send + Sync + 'static>(&self, key: ArtifactKey) -> Option<Arc<T>> {
        // cvcp: allow(D2, reason = "cache lookup-latency histogram; observability only")
        let lookup_from = Instant::now();
        let shard = self.shard_for(&key);
        let slot = {
            let mut map = shard.map.lock().expect("artifact cache shard lock");
            match map.index.get(&key).copied() {
                Some(i) if map.node(i).slot.get().is_some() => {
                    map.touch(i);
                    // Hits feed the demand signal too — see the
                    // `get_or_compute` hit path.
                    shard
                        .demand_nanos
                        .fetch_add(map.node(i).cost_nanos, Ordering::Relaxed);
                    Some(map.node(i).slot.clone())
                }
                _ => None,
            }
        };
        let Some(slot) = slot else {
            shard.misses.fetch_add(1, Ordering::Relaxed);
            note_thread_cache_event(false);
            return None;
        };
        let (value, _) = slot.get().expect("slot checked initialized").clone();
        shard.hits.fetch_add(1, Ordering::Relaxed);
        note_thread_cache_event(true);
        self.latencies[key.kind_index()]
            .get
            .record(u64::try_from(lookup_from.elapsed().as_nanos()).unwrap_or(u64::MAX));
        Some(
            value
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("artifact type mismatch for cache key {key:?}")),
        )
    }

    /// Books a freshly computed artifact into the shard's resident
    /// accounting and enforces its budget slice.  `slot` identifies the
    /// computation: if the entry was removed (or replaced) concurrently —
    /// e.g. by [`Self::clear`] — the bytes are simply not counted as
    /// resident.
    fn commit(&self, shard: &Shard, key: ArtifactKey, slot: &Slot, bytes: usize, cost_nanos: u64) {
        // The kind EWMA learns from every computation — including ones
        // whose artifact cannot stay resident — and the node records the
        // smoothed estimate rather than the raw one-shot measurement.
        let cost_nanos = self.smoothed_cost(&key, cost_nanos);
        // Every *winnable* commit is a paid miss: feed the shard's demand
        // signal so the rebalancer routes budget to where recompute time
        // is being spent.  An artifact no slice could ever hold is
        // excluded — its recompute cost would otherwise capture budget
        // from shards that could convert the same bytes into hits.
        if bytes <= self.reachable_byte_slice {
            shard.demand_nanos.fetch_add(cost_nanos, Ordering::Relaxed);
        }
        // On-demand slice borrow: budget moves the instant a shard needs
        // it, not at the next periodic round.  (The periodic rebalancer
        // alone always lags the workload: by the time a starved shard's
        // demand wins budget, the trial that needed it has passed.  An
        // unsharded cache never has this problem — its budget is a single
        // pool — so borrowing is what closes the sharded hit-rate gap.)
        // The commit grows this shard's slice to hold its residents plus
        // the new artifact — and one artifact's worth of slack, so the
        // shard is not back at the exact edge (and borrowing again) on
        // its very next commit.  Runs *before* this shard's map lock is
        // taken: the borrower may lock donor shards to evict, and
        // equal-rank shard locks never nest.  (The residency hint it
        // reads may lag a concurrent commit by a moment; the worst case
        // is borrowing slightly short and evicting from our own LRU.)
        if self.config.rebalance_interval != 0 && bytes <= self.reachable_byte_slice {
            if let Some(slice) = shard.byte_slice() {
                let wanted = shard
                    .resident_bytes_hint
                    .load(Ordering::Relaxed)
                    .saturating_add(bytes.saturating_mul(2))
                    .min(self.reachable_byte_slice);
                if wanted > slice {
                    self.borrow_byte_slice(shard, wanted - slice);
                }
            }
        }
        let mut map = shard.map.lock().expect("artifact cache shard lock");
        // Over-budget singleton bypass: an artifact that alone exceeds the
        // shard's byte slice (or any artifact, when the entry slice is 0)
        // can never stay resident — admitting it first would evict *every*
        // other resident (a cache wipe) only to be evicted itself.  Count
        // it as immediately evicted and leave the residents untouched.
        let oversized = shard.byte_slice().is_some_and(|max| bytes > max)
            || shard.entry_slice().is_some_and(|max| max == 0);
        if oversized {
            if let Some(&i) = map.index.get(&key) {
                let node = map.node(i);
                if Arc::ptr_eq(&node.slot, slot) && node.bytes.is_none() {
                    map.index.remove(&key);
                    map.release(i);
                }
            }
            shard.evictions.fetch_add(1, Ordering::Relaxed);
            shard
                .evicted_bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
            return;
        }
        // Admission control: decline artifacts whose recompute cost does
        // not pay for their residency.  Same bypass shape as the
        // oversized path — the caller's `Arc` stays valid, the resident
        // set is untouched, only the rejection counter moves.
        if self.config.admission == AdmissionPolicy::Cost
            && cost_nanos < Self::admission_threshold(bytes, map.resident_bytes, shard.byte_slice())
        {
            if let Some(&i) = map.index.get(&key) {
                let node = map.node(i);
                if Arc::ptr_eq(&node.slot, slot) && node.bytes.is_none() {
                    map.index.remove(&key);
                    map.release(i);
                }
            }
            shard.admission_rejections.inc();
            return;
        }
        if let Some(&i) = map.index.get(&key) {
            let committed = {
                let node = map.node_mut(i);
                if Arc::ptr_eq(&node.slot, slot) && node.bytes.is_none() {
                    node.bytes = Some(bytes);
                    node.cost_nanos = cost_nanos;
                    true
                } else {
                    false
                }
            };
            if committed {
                // Commit-time recency: the lookup happened before a
                // potentially slow compute, during which other keys may
                // have been touched — without this, the freshly computed
                // artifact could be the immediate LRU victim.
                map.attach_tail(i);
                map.resident_bytes += bytes;
                map.resident_entries += 1;
                shard
                    .resident_bytes_hint
                    .store(map.resident_bytes, Ordering::Relaxed);
            }
        }
        self.enforce_budget(shard, &mut map);
        map.peak_resident_bytes = map.peak_resident_bytes.max(map.resident_bytes);
    }

    /// Moves up to `need` bytes of budget from other shards onto
    /// `needy`, best-effort, in two stages: first *idle* headroom (slice
    /// minus residency hint, lock-free by CAS), then — if that does not
    /// cover the need — *occupied* budget reclaimed from the
    /// coldest-demand shards by shrinking their slices (never below the
    /// floor) and eagerly evicting their LRU tails.  Donors always
    /// shrink *before* `needy` grows, so the slice sum never exceeds the
    /// global budget.  Runs under the single-flight `rebalancing` latch
    /// shared with the periodic rebalancer — two concurrent writers with
    /// independent snapshots could otherwise re-inflate a just-shrunk
    /// slice; a borrow that loses the latch simply skips (the bypass
    /// path still feeds the demand signal, and the periodic round will
    /// route budget here).  Callers must hold no shard lock.
    fn borrow_byte_slice(&self, needy: &Shard, need: usize) {
        if self.rebalancing.swap(true, Ordering::Acquire) {
            return;
        }
        let mut donors: Vec<(usize, &Shard)> = self
            .shards
            .iter()
            .filter(|s| !std::ptr::eq(*s, needy))
            .map(|s| {
                let slice = s.byte_slice.load(Ordering::Relaxed);
                let keep = s
                    .resident_bytes_hint
                    .load(Ordering::Relaxed)
                    .max(self.byte_floor);
                (slice.saturating_sub(keep), s)
            })
            .collect();
        // Most idle headroom first: fewest victims disturbed, and a shard
        // that is actively using its slice is touched last.
        donors.sort_by_key(|&(headroom, _)| std::cmp::Reverse(headroom));
        let mut gained = 0usize;
        for (headroom, donor) in donors {
            if gained >= need {
                break;
            }
            let mut take = headroom.min(need - gained);
            while take > 0 {
                let cur = donor.byte_slice.load(Ordering::Relaxed);
                if cur == usize::MAX {
                    break;
                }
                take = take.min(cur);
                if donor
                    .byte_slice
                    .compare_exchange(cur, cur - take, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    gained += take;
                    break;
                }
            }
        }
        // Second stage, when idle headroom alone cannot cover the need:
        // reclaim *occupied* budget from the coldest shards — ascending
        // recompute demand, so a shard whose workload phase has passed
        // (and whose residents are likely dead) is raided before one
        // that is actively converting budget into hits.  Each donor's
        // slice is cut (never below the floor) and its LRU tail evicted
        // eagerly under its own lock, taken *after* the slice store so
        // the freed budget is real before `needy` grows.  This is the
        // distributed analogue of the unsharded cache's global LRU: a
        // new artifact displaces the system's coldest bytes, wherever
        // they reside.  The caller holds no shard lock here, and donor
        // locks are taken one at a time — equal-rank locks never nest.
        if gained < need {
            let mut cold: Vec<(u64, &Shard)> = self
                .shards
                .iter()
                .filter(|s| !std::ptr::eq(*s, needy))
                .map(|s| (s.demand_nanos.load(Ordering::Relaxed), s))
                .collect();
            cold.sort_by_key(|&(demand, _)| demand);
            for (_, donor) in cold {
                if gained >= need {
                    break;
                }
                let cur = donor.byte_slice.load(Ordering::Relaxed);
                if cur == usize::MAX {
                    continue;
                }
                let take = cur.saturating_sub(self.byte_floor).min(need - gained);
                if take == 0 {
                    continue;
                }
                let mut map = donor.map.lock().expect("artifact cache shard lock");
                donor.byte_slice.store(cur - take, Ordering::Relaxed);
                self.enforce_budget(donor, &mut map);
                gained += take;
            }
        }
        if gained > 0 {
            needy.byte_slice.fetch_add(gained, Ordering::Relaxed);
        }
        self.rebalancing.store(false, Ordering::Release);
    }

    /// The minimum smoothed recompute cost (nanoseconds) an artifact of
    /// `bytes` must carry to be admitted into a shard currently holding
    /// `resident_bytes` of a `byte_slice` budget: a base store-cost of
    /// [`ADMISSION_NANOS_PER_KIB`] per KiB, plus the same again scaled by
    /// the shard's fill fraction — an empty shard admits anything whose
    /// cost covers the base rate, a full shard demands double.
    fn admission_threshold(bytes: usize, resident_bytes: usize, byte_slice: Option<usize>) -> u64 {
        let kib = (bytes as u64).div_ceil(1024).max(1);
        let base = kib.saturating_mul(ADMISSION_NANOS_PER_KIB);
        let pressure = match byte_slice {
            Some(slice) if slice > 0 => {
                ((base as u128 * resident_bytes as u128) / slice as u128) as u64
            }
            _ => 0,
        };
        base.saturating_add(pressure)
    }

    fn over_budget(&self, shard: &Shard, map: &ShardMap) -> bool {
        shard
            .byte_slice()
            .is_some_and(|max| map.resident_bytes > max)
            || shard
                .entry_slice()
                .is_some_and(|max| map.resident_entries > max)
    }

    /// Evicts committed entries — O(1) per victim, from the ordered LRU
    /// list — until the shard's budget slice holds.  In-flight
    /// (uncommitted) entries are never on the list, so concurrent
    /// `get_or_compute` calls are never torn.
    fn enforce_budget(&self, shard: &Shard, map: &mut ShardMap) {
        while self.over_budget(shard, map) {
            let victim = match self.policy {
                EvictionPolicy::Lru => map.head,
                EvictionPolicy::CostBenefit => map.cost_benefit_victim(),
            };
            if victim == NIL {
                return;
            }
            map.detach(victim);
            let node = map.release(victim);
            map.index.remove(&node.key);
            let bytes = node.bytes.expect("LRU node committed");
            map.resident_bytes -= bytes;
            map.resident_entries -= 1;
            shard
                .resident_bytes_hint
                .store(map.resident_bytes, Ordering::Relaxed);
            shard.evictions.fetch_add(1, Ordering::Relaxed);
            shard
                .evicted_bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Counts one public cache operation and, every
    /// [`CacheConfig::rebalance_interval`] of them, runs an adaptive
    /// shard-budget rebalance.  Called with no shard lock held.  The
    /// trigger is an operation count, never a clock (D2): for a fixed
    /// operation sequence the rebalance points are deterministic.
    fn note_op(&self) {
        if self.config.rebalance_interval == 0
            || self.shards.len() < 2
            || self.config.is_unbounded()
        {
            return;
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.config.rebalance_interval) {
            self.rebalance();
        }
    }

    /// One adaptive rebalance round: reads every shard's accumulated
    /// recompute demand (decaying it geometrically so old pressure
    /// fades), computes new byte/entry budget slices proportional to
    /// that demand above a configured floor, and applies them with
    /// hysteresis — each slice moves three-quarters of the way toward
    /// its target per round.
    /// Shrinking shards are processed before growing ones, so the sum of
    /// the live slices never exceeds the global budget mid-apply (shard
    /// locks are taken one at a time — they never nest).  Slices never
    /// shrink below the shard's residency snapshot, so a rebalance moves
    /// idle budget rather than evicting (commits racing the snapshot are
    /// still clamped by `enforce_budget` under the new slice).
    /// Rebalancing moves budget, never values: results are bit-identical
    /// under any slice assignment.
    fn rebalance(&self) {
        if self.rebalancing.swap(true, Ordering::Acquire) {
            return; // a round is already running; skip, don't queue
        }
        let weights: Vec<u64> = self
            .shards
            .iter()
            .map(|s| {
                let cost = s.demand_nanos.load(Ordering::Relaxed);
                s.demand_nanos.store(cost / 2, Ordering::Relaxed);
                cost
            })
            .collect();
        let floor_percent = self.config.rebalance_floor_percent;
        let next_bytes = self.config.max_bytes.map(|total| {
            let current: Vec<usize> = self
                .shards
                .iter()
                .map(|s| s.byte_slice.load(Ordering::Relaxed))
                .collect();
            rebalanced_slices(total, &current, &weights, floor_percent)
        });
        let next_entries = self.config.max_entries.map(|total| {
            let current: Vec<usize> = self
                .shards
                .iter()
                .map(|s| s.entry_slice.load(Ordering::Relaxed))
                .collect();
            rebalanced_slices(total, &current, &weights, floor_percent)
        });
        // Two passes: shrinks first, then grows, so the global budget is
        // respected at every instant in between.
        for grow_pass in [false, true] {
            for (i, shard) in self.shards.iter().enumerate() {
                let new_bytes = next_bytes.as_ref().map(|v| v[i]);
                let new_entries = next_entries.as_ref().map(|v| v[i]);
                let shrinks = new_bytes
                    .is_some_and(|b| b < shard.byte_slice.load(Ordering::Relaxed))
                    || new_entries.is_some_and(|e| e < shard.entry_slice.load(Ordering::Relaxed));
                if shrinks == grow_pass {
                    continue;
                }
                let mut map = shard.map.lock().expect("artifact cache shard lock");
                if let Some(b) = new_bytes {
                    shard.byte_slice.store(b, Ordering::Relaxed);
                }
                if let Some(e) = new_entries {
                    shard.entry_slice.store(e, Ordering::Relaxed);
                }
                self.enforce_budget(shard, &mut map);
            }
        }
        self.rebalances.inc();
        self.rebalancing.store(false, Ordering::Release);
    }

    /// Number of populated entries (across all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let map = shard.map.lock().expect("artifact cache shard lock");
                map.nodes
                    .iter()
                    .flatten()
                    .filter(|node| node.slot.get().is_some())
                    .count()
            })
            .sum()
    }

    /// `true` when no entry has been populated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total map entries including uncommitted in-flight slots — the probe
    /// the panic-leak regression test uses (a leaked slot is invisible to
    /// [`Self::len`], which only counts populated entries).
    #[doc(hidden)]
    pub fn raw_entry_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .map
                    .lock()
                    .expect("artifact cache shard lock")
                    .index
                    .len()
            })
            .sum()
    }

    /// Drops every entry and resets the residency accounting (does not reset
    /// the hit/miss/eviction counters or the peak watermarks).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            {
                let mut map = shard.map.lock().expect("artifact cache shard lock");
                let peak = map.peak_resident_bytes;
                *map = ShardMap {
                    peak_resident_bytes: peak,
                    ..ShardMap::default()
                };
                shard.resident_bytes_hint.store(0, Ordering::Relaxed);
            }
            // Joiners parked on a dropped in-flight entry must re-claim.
            shard.join_cv.notify_all();
        }
    }

    /// Per-shard snapshot of the counters and residency state.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| {
                let map = shard.map.lock().expect("artifact cache shard lock");
                ShardStats {
                    hits: shard.hits.load(Ordering::Relaxed),
                    misses: shard.misses.load(Ordering::Relaxed),
                    evictions: shard.evictions.load(Ordering::Relaxed),
                    evicted_bytes: shard.evicted_bytes.load(Ordering::Relaxed),
                    resident_entries: map.resident_entries,
                    resident_bytes: map.resident_bytes,
                    peak_resident_bytes: map.peak_resident_bytes,
                    admission_rejections: shard.admission_rejections.get(),
                    byte_slice: shard.byte_slice(),
                    entry_slice: shard.entry_slice(),
                }
            })
            .collect()
    }

    /// Snapshot of the counters and residency state, aggregated over all
    /// shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats {
            shards: self.shards.len(),
            rebalances: self.rebalances.get(),
            ..CacheStats::default()
        };
        for s in self.shard_stats() {
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.evicted_bytes += s.evicted_bytes;
            total.resident_entries += s.resident_entries;
            total.resident_bytes += s.resident_bytes;
            total.peak_resident_bytes += s.peak_resident_bytes;
            total.admission_rejections += s.admission_rejections;
        }
        total
    }

    /// Asserts that every shard's incremental residency accounting matches
    /// its live map exactly, that its budget slice holds, and that the
    /// intrusive LRU list is coherent (test/diagnostic helper).
    ///
    /// # Panics
    ///
    /// Panics when `resident_bytes`/`resident_entries` drifted from the sum
    /// over committed entries, a budget slice is exceeded, or the LRU list
    /// is inconsistent with the slab.
    #[doc(hidden)]
    pub fn assert_accounting_consistent(&self) {
        // Adaptive slices may move budget between shards, but the *sum*
        // of the live slices must never exceed the global budgets.
        if let Some(total) = self.config.max_bytes {
            let sum: usize = self.shards.iter().filter_map(Shard::byte_slice).sum();
            assert!(
                sum <= total,
                "per-shard byte slices sum to {sum}, above the global budget {total}"
            );
        }
        if let Some(total) = self.config.max_entries {
            let sum: usize = self.shards.iter().filter_map(Shard::entry_slice).sum();
            assert!(
                sum <= total,
                "per-shard entry slices sum to {sum}, above the global budget {total}"
            );
        }
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let map = shard.map.lock().expect("artifact cache shard lock");
            let (entries, bytes) = map
                .nodes
                .iter()
                .flatten()
                .filter_map(|node| node.bytes)
                .fold((0usize, 0usize), |(n, b), eb| (n + 1, b + eb));
            assert_eq!(
                (map.resident_entries, map.resident_bytes),
                (entries, bytes),
                "shard {shard_idx}: residency accounting drifted from the live map"
            );
            if let Some(max) = shard.byte_slice() {
                assert!(
                    map.resident_bytes <= max,
                    "shard {shard_idx}: resident bytes {} exceed the shard slice {max}",
                    map.resident_bytes
                );
            }
            if let Some(max) = shard.entry_slice() {
                assert!(
                    map.resident_entries <= max,
                    "shard {shard_idx}: resident entries {} exceed the shard slice {max}",
                    map.resident_entries
                );
            }
            // LRU list integrity: exactly the committed nodes, linked both
            // ways, every key indexed back to its node.
            let mut walked = 0usize;
            let mut cursor = map.head;
            let mut prev = NIL;
            while cursor != NIL {
                let node = map.node(cursor);
                assert!(node.in_lru, "shard {shard_idx}: listed node unflagged");
                assert!(
                    node.bytes.is_some(),
                    "shard {shard_idx}: uncommitted node on the LRU list"
                );
                assert_eq!(node.prev, prev, "shard {shard_idx}: broken back-link");
                assert_eq!(
                    map.index.get(&node.key),
                    Some(&cursor),
                    "shard {shard_idx}: listed node not indexed"
                );
                walked += 1;
                assert!(
                    walked <= map.resident_entries,
                    "shard {shard_idx}: LRU list longer than the resident count (cycle?)"
                );
                prev = cursor;
                cursor = node.next;
            }
            assert_eq!(
                walked, map.resident_entries,
                "shard {shard_idx}: LRU list does not cover the committed entries"
            );
            assert_eq!(map.tail, prev, "shard {shard_idx}: stale tail pointer");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn custom(key: u64) -> ArtifactKey {
        ArtifactKey::Custom { domain: 42, key }
    }

    #[test]
    fn computes_once_and_shares_the_arc() {
        let cache = ArtifactCache::new();
        let calls = AtomicUsize::new(0);
        let key = ArtifactKey::PairwiseDistances { data: 42 };
        let a: Arc<Vec<f64>> = cache.get_or_compute(key, || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec![1.0, 2.0]
        });
        let b: Arc<Vec<f64>> = cache.get_or_compute(key, || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec![3.0]
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.resident_entries, 1);
        assert_eq!(stats.resident_bytes, a.artifact_bytes());
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.shards, 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let cache = ArtifactCache::new();
        let a: Arc<usize> = cache.get_or_compute(
            ArtifactKey::CoreDistances {
                data: 1,
                min_pts: 3,
            },
            || 3,
        );
        let b: Arc<usize> = cache.get_or_compute(
            ArtifactKey::CoreDistances {
                data: 1,
                min_pts: 5,
            },
            || 5,
        );
        assert_eq!((*a, *b), (3, 5));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_requests_share_one_computation() {
        let cache = Arc::new(ArtifactCache::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let key = ArtifactKey::Custom { domain: 7, key: 7 };
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                std::thread::spawn(move || {
                    let v: Arc<u64> = cache.get_or_compute(key, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        99
                    });
                    *v
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn parked_joiners_reclaim_after_winner_panic() {
        // The cooperative join must not strand joiners when the winner
        // panics: the panic guard removes the in-flight entry and wakes
        // them, exactly one re-claims as the new winner, and everyone gets
        // the recomputed value.
        let cache = Arc::new(ArtifactCache::new());
        let key = ArtifactKey::Custom { domain: 8, key: 8 };
        let calls = Arc::new(AtomicUsize::new(0));
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let winner = {
            let cache = Arc::clone(&cache);
            let calls = Arc::clone(&calls);
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _: Arc<u64> = cache.get_or_compute(key, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        started_tx.send(()).unwrap();
                        std::thread::sleep(std::time::Duration::from_millis(40));
                        panic!("winner dies mid-flight")
                    });
                }));
                assert!(result.is_err(), "the winning computation panics");
            })
        };
        started_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("winner claims the key first");
        let joiners: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                std::thread::spawn(move || {
                    let v: Arc<u64> = cache.get_or_compute(key, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        77
                    });
                    *v
                })
            })
            .collect();
        winner.join().unwrap();
        for joiner in joiners {
            assert_eq!(joiner.join().unwrap(), 77);
        }
        assert_eq!(
            calls.load(Ordering::SeqCst),
            2,
            "one panicked attempt plus exactly one successful recompute"
        );
    }

    #[test]
    fn clear_wakes_parked_joiners() {
        // `clear` drops in-flight entries; a parked joiner must wake and
        // re-claim instead of sleeping forever on a vanished computation.
        let cache = Arc::new(ArtifactCache::new());
        let key = ArtifactKey::Custom { domain: 8, key: 9 };
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let winner = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let v: Arc<u64> = cache.get_or_compute(key, || {
                    started_tx.send(()).unwrap();
                    gate_rx
                        .recv_timeout(std::time::Duration::from_secs(5))
                        .unwrap();
                    5
                });
                *v
            })
        };
        started_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        let joiner = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let v: Arc<u64> = cache.get_or_compute(key, || 5);
                *v
            })
        };
        // Give the joiner a moment to park, then drop the entry from under
        // both of them and release the winner.
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.clear();
        gate_tx.send(()).unwrap();
        assert_eq!(winner.join().unwrap(), 5);
        assert_eq!(joiner.join().unwrap(), 5);
    }

    #[test]
    fn joining_pool_workers_help_run_ready_tasks() {
        // Two pool workers race to compute one key; the winner blocks until
        // a third queued task has run.  With the old blocking join this
        // deadlocks (both workers wedged on one computation); with the
        // cooperative join the losing worker runs the third task itself.
        use crate::graph::N_LANES;
        use cvcp_obs::EngineMetrics;
        let metrics = Arc::new(EngineMetrics::new(2, N_LANES));
        let pool = crate::pool::ThreadPool::new(2, metrics);
        let handle = pool.handle();
        let cache = Arc::new(ArtifactCache::new());
        let key = ArtifactKey::Custom { domain: 9, key: 1 };
        let (helped_tx, helped_rx) = std::sync::mpsc::channel::<()>();
        let helped_rx = Arc::new(std::sync::Mutex::new(helped_rx));
        let (done_tx, done_rx) = std::sync::mpsc::channel::<u64>();
        for _ in 0..2 {
            let cache = Arc::clone(&cache);
            let helped_rx = Arc::clone(&helped_rx);
            let done_tx = done_tx.clone();
            handle.spawn(
                Box::new(move || {
                    let v: Arc<u64> = cache.get_or_compute(key, || {
                        helped_rx
                            .lock()
                            .unwrap()
                            .recv_timeout(std::time::Duration::from_secs(10))
                            .expect("the joining worker must help run the queued task");
                        42
                    });
                    done_tx.send(*v).unwrap();
                }),
                1,
            );
        }
        handle.spawn(Box::new(move || helped_tx.send(()).unwrap()), 1);
        for _ in 0..2 {
            assert_eq!(
                done_rx
                    .recv_timeout(std::time::Duration::from_secs(10))
                    .unwrap(),
                42
            );
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn get_counts_misses_symmetrically() {
        let cache = ArtifactCache::new();
        // absent key -> miss
        assert!(cache.get::<u64>(custom(1)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        assert_eq!(stats.hit_rate(), 0.0);
        // populate (one compute miss), then a get hit
        let _: Arc<u64> = cache.get_or_compute(custom(1), || 5);
        assert_eq!(*cache.get::<u64>(custom(1)).unwrap(), 5);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_max_entries_and_recency() {
        let cache = ArtifactCache::with_config(CacheConfig::default().with_max_entries(2));
        let _: Arc<u64> = cache.get_or_compute(custom(1), || 1);
        let _: Arc<u64> = cache.get_or_compute(custom(2), || 2);
        // touch key 1 so key 2 is the LRU victim
        let _: Arc<u64> = cache.get_or_compute(custom(1), || 11);
        let _: Arc<u64> = cache.get_or_compute(custom(3), || 3);
        assert!(cache.get::<u64>(custom(1)).is_some());
        assert!(cache.get::<u64>(custom(2)).is_none(), "LRU entry evicted");
        assert!(cache.get::<u64>(custom(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident_entries, 2);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn byte_budget_is_never_exceeded() {
        // Each Vec<u64> artifact: 24 bytes of Vec header + 8 per element.
        let artifact_bytes = vec![0u64; 10].artifact_bytes();
        let budget = 2 * artifact_bytes + artifact_bytes / 2; // fits 2, not 3
        let cache = ArtifactCache::with_config(CacheConfig::default().with_max_bytes(budget));
        for k in 0..6u64 {
            let v: Arc<Vec<u64>> = cache.get_or_compute(custom(k), || vec![k; 10]);
            assert_eq!(v.len(), 10);
            let stats = cache.stats();
            assert!(stats.resident_bytes <= budget);
            assert!(stats.peak_resident_bytes <= budget);
        }
        let stats = cache.stats();
        assert_eq!(stats.resident_entries, 2);
        assert_eq!(stats.evictions, 4);
        assert_eq!(stats.evicted_bytes, 4 * artifact_bytes as u64);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn freshly_computed_artifact_is_not_the_first_eviction_victim() {
        // The lookup happens before a potentially slow compute; other keys
        // touched during that compute (here: a nested get_or_compute,
        // exactly the FOSC tree-over-pairwise pattern) must not make the
        // fresh artifact look least-recently-used at commit time.
        let artifact_bytes = vec![0u64; 8].artifact_bytes();
        let cache =
            ArtifactCache::with_config(CacheConfig::default().with_max_bytes(artifact_bytes));
        let outer: Arc<Vec<u64>> = cache.get_or_compute(custom(1), || {
            let inner: Arc<Vec<u64>> = cache.get_or_compute(custom(2), || vec![2; 8]);
            inner.iter().map(|&x| x - 1).collect()
        });
        assert_eq!(outer[0], 1);
        // The nested (older-used) artifact is the victim, not the fresh one.
        assert!(cache.get::<Vec<u64>>(custom(1)).is_some());
        assert!(cache.get::<Vec<u64>>(custom(2)).is_none());
        cache.assert_accounting_consistent();
    }

    #[test]
    fn oversized_artifact_is_computed_then_released() {
        let cache = ArtifactCache::with_config(CacheConfig::default().with_max_bytes(8));
        let v: Arc<Vec<u64>> = cache.get_or_compute(custom(0), || vec![7; 100]);
        // the caller's Arc is valid even though the artifact cannot stay
        assert_eq!(v[99], 7);
        let stats = cache.stats();
        assert_eq!(stats.resident_entries, 0);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.evictions, 1);
        assert!(stats.peak_resident_bytes <= 8);
        // next request recomputes
        let w: Arc<Vec<u64>> = cache.get_or_compute(custom(0), || vec![8; 100]);
        assert_eq!(w[0], 8);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn oversized_commit_does_not_evict_other_residents() {
        // The thrash regression: committing one artifact larger than the
        // whole byte budget used to evict *every* other resident (and then
        // the oversized artifact itself) — a full cache wipe.  Over-budget
        // singletons must bypass residency without touching their
        // neighbours.
        let artifact_bytes = vec![0u64; 10].artifact_bytes();
        let budget = 3 * artifact_bytes;
        let cache = ArtifactCache::with_config(CacheConfig::default().with_max_bytes(budget));
        // Warm the cache with three residents that fill the budget exactly.
        for k in 0..3u64 {
            let _: Arc<Vec<u64>> = cache.get_or_compute(custom(k), || vec![k; 10]);
        }
        assert_eq!(cache.stats().resident_entries, 3);
        // Commit a 2×-budget artifact.
        let big: Arc<Vec<u64>> = cache.get_or_compute(custom(99), || vec![9; 2 * budget / 8]);
        assert_eq!(big.len(), 2 * budget / 8);
        let stats = cache.stats();
        assert_eq!(
            stats.resident_entries, 3,
            "prior residents must survive an oversized commit"
        );
        for k in 0..3u64 {
            assert!(
                cache.get::<Vec<u64>>(custom(k)).is_some(),
                "resident {k} was evicted by an oversized artifact"
            );
        }
        assert_eq!(
            stats.evictions, 1,
            "the oversized artifact counts as one immediate eviction"
        );
        assert!(cache.get::<Vec<u64>>(custom(99)).is_none());
        cache.assert_accounting_consistent();
    }

    #[test]
    fn panicking_compute_releases_the_in_flight_slot() {
        // The leak regression: a panic inside `compute` used to leave a
        // permanently uncommitted entry in the map — never an eviction
        // candidate, invisible to `len()`, accumulating per failed key.
        let cache = ArtifactCache::with_config(CacheConfig::default().with_max_entries(4));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Arc<u64> = cache.get_or_compute(custom(1), || panic!("compute exploded"));
        }));
        assert!(result.is_err(), "the compute panic must propagate");
        assert_eq!(
            cache.raw_entry_count(),
            0,
            "a panicked compute must not leak its in-flight entry"
        );
        // The key stays retryable and commits normally afterwards.
        let v: Arc<u64> = cache.get_or_compute(custom(1), || 7);
        assert_eq!(*v, 7);
        assert_eq!(cache.stats().resident_entries, 1);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn shard_assignment_is_deterministic_and_spread() {
        let a = ArtifactCache::with_config(CacheConfig::default().with_shards(8));
        let b = ArtifactCache::with_config(CacheConfig::default().with_shards(8));
        assert_eq!(a.shard_count(), 8);
        let keys: Vec<ArtifactKey> = (0..64)
            .map(|i| ArtifactKey::DensityHierarchy {
                data: 0xD00D + i,
                min_pts: 3 + (i as usize % 8),
                min_cluster_size: 2,
            })
            .chain((0..64).map(custom))
            .collect();
        let mut used = std::collections::BTreeSet::new();
        for key in &keys {
            let shard = a.shard_of(key);
            assert!(shard < 8);
            assert_eq!(
                shard,
                b.shard_of(key),
                "shard assignment must be identical across cache instances"
            );
            used.insert(shard);
        }
        assert!(
            used.len() >= 4,
            "128 distinct keys should spread over most of 8 shards, used {used:?}"
        );
    }

    #[test]
    fn sharded_cache_returns_identical_values_and_respects_budget_slices() {
        let artifact_bytes = vec![0u64; 10].artifact_bytes();
        let unsharded = ArtifactCache::new();
        let sharded =
            ArtifactCache::with_config(CacheConfig::default().with_max_entries(8).with_shards(4));
        for k in 0..40u64 {
            let a: Arc<Vec<u64>> = unsharded.get_or_compute(custom(k), || vec![k; 10]);
            let b: Arc<Vec<u64>> = sharded.get_or_compute(custom(k), || vec![k; 10]);
            assert_eq!(*a, *b, "sharding must never change cached values");
            assert_eq!(a.artifact_bytes(), artifact_bytes);
        }
        let stats = sharded.stats();
        assert_eq!(stats.shards, 4);
        assert!(
            stats.resident_entries <= 8,
            "global entry budget exceeded: {}",
            stats.resident_entries
        );
        assert!(stats.evictions >= 32);
        let per_shard = sharded.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(
            per_shard.iter().map(|s| s.misses).sum::<u64>(),
            stats.misses,
            "aggregate stats must equal the per-shard sum"
        );
        // The rebalancer may have moved entry budget between shards by
        // now; the invariants are per-shard residency within the *current*
        // slice and the slices summing to the global budget (the latter is
        // also in `assert_accounting_consistent`).
        for s in &per_shard {
            let slice = s.entry_slice.expect("entry-bounded shard");
            assert!(
                s.resident_entries <= slice,
                "shard holds {} entries over its slice {slice}",
                s.resident_entries
            );
        }
        assert_eq!(
            per_shard
                .iter()
                .filter_map(|s| s.entry_slice)
                .sum::<usize>(),
            8,
            "entry slices must sum to the global budget"
        );
        sharded.assert_accounting_consistent();
    }

    #[test]
    fn shard_count_is_normalized_to_a_power_of_two() {
        for (requested, expect) in [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (9, 16)] {
            let cache = ArtifactCache::with_config(CacheConfig::default().with_shards(requested));
            assert_eq!(cache.shard_count(), expect, "requested {requested}");
            assert_eq!(cache.config().shards, expect);
        }
    }

    #[test]
    fn shard_count_is_clamped_so_entry_slices_stay_nonzero() {
        // More shards than entry budget would slice to 0 entries per shard
        // — every commit would bypass and caching would silently turn off.
        // The shard count is halved until each shard keeps ≥ 1 entry.
        let cache =
            ArtifactCache::with_config(CacheConfig::default().with_max_entries(4).with_shards(8));
        assert_eq!(cache.shard_count(), 4);
        for k in 0..8u64 {
            let _: Arc<u64> = cache.get_or_compute(custom(k), || k);
        }
        let stats = cache.stats();
        assert!(
            stats.resident_entries >= 1,
            "a clamped sharded cache must still cache"
        );
        assert!(stats.resident_entries <= 4, "global entry budget holds");
        cache.assert_accounting_consistent();
        // A zero entry budget is honoured as "cache nothing" on one shard.
        let none =
            ArtifactCache::with_config(CacheConfig::default().with_max_entries(0).with_shards(8));
        assert_eq!(none.shard_count(), 1);
        let _: Arc<u64> = none.get_or_compute(custom(1), || 1);
        assert_eq!(none.stats().resident_entries, 0);
        none.assert_accounting_consistent();
    }

    #[test]
    fn rebalanced_slices_respect_floor_hysteresis_and_total() {
        // All demand on shard 0: its slice grows toward the non-floor
        // budget, the cold shards shrink toward the floor, and every
        // round (a) allocates exactly the global total, (b) moves each
        // cold slice only downward, and gently — at most a sixteenth of
        // its gap per round — (c) never dips below the 25% floor.
        let total = 8000usize;
        let even = 2000usize;
        let floor = 500usize;
        let mut slices = vec![even; 4];
        let weights = [1_000_000u64, 0, 0, 0];
        for _ in 0..48 {
            let next = rebalanced_slices(total, &slices, &weights, 25);
            assert_eq!(next.iter().sum::<usize>(), total, "budget fully allocated");
            for (i, (&n, &c)) in next.iter().zip(&slices).enumerate() {
                assert!(n >= floor, "slice {i} fell below the floor: {n}");
                if i > 0 {
                    assert!(n <= c, "cold slice {i} must not grow");
                    assert!(
                        n >= c - (c - floor).div_ceil(16),
                        "cold slice {i} shrank by more than a sixteenth of its gap"
                    );
                }
            }
            slices = next;
        }
        assert!(
            slices[0] > 6000,
            "hot shard must converge toward the whole distributable budget, got {slices:?}"
        );
        for &cold in &slices[1..] {
            assert!((floor..even).contains(&cold), "cold slices near the floor");
        }
        // No demand signal at all: the target is the even split, so an
        // even assignment is a fixed point.
        assert_eq!(
            rebalanced_slices(total, &[even; 4], &[0; 4], 25),
            vec![even; 4]
        );
    }

    #[test]
    fn adaptive_rebalance_grows_the_hot_shard() {
        let artifact_bytes = vec![0u64; 32].artifact_bytes();
        let total = 8 * artifact_bytes;
        let cache = ArtifactCache::with_config(
            CacheConfig::default()
                .with_max_bytes(total)
                .with_shards(2)
                .with_rebalance_interval(16),
        );
        let even = total / 2;
        let hot = cache.shard_of(&custom(0));
        let mut hot_keys = Vec::new();
        let mut cold_key = None;
        for k in 0..10_000u64 {
            if cache.shard_of(&custom(k)) == hot {
                if hot_keys.len() < 12 {
                    hot_keys.push(k);
                }
            } else if cold_key.is_none() {
                cold_key = Some(k);
            }
            if hot_keys.len() == 12 && cold_key.is_some() {
                break;
            }
        }
        let cold_key = cold_key.expect("both shards reachable");
        let _: Arc<Vec<u64>> = cache.get_or_compute(custom(cold_key), || vec![cold_key; 32]);
        // Hammer the hot shard with a working set 3× its even slice: every
        // round misses, accumulating recompute demand that the rebalancer
        // must convert into byte budget.
        for _ in 0..20 {
            for &k in &hot_keys {
                let v: Arc<Vec<u64>> = cache.get_or_compute(custom(k), || {
                    // Guarantee a measurable (nonzero-EWMA) compute cost.
                    std::hint::black_box((0..2000u64).sum::<u64>());
                    vec![k; 32]
                });
                assert_eq!(*v, vec![k; 32], "rebalancing must never change values");
            }
        }
        let stats = cache.stats();
        assert!(stats.rebalances > 0, "the op-count trigger must have fired");
        let per_shard = cache.shard_stats();
        let hot_slice = per_shard[hot].byte_slice.expect("bounded shard");
        let cold_slice = per_shard[1 - hot].byte_slice.expect("bounded shard");
        assert!(
            hot_slice > even,
            "hot shard slice {hot_slice} must grow past the even split {even}"
        );
        assert!(
            cold_slice < even,
            "cold shard slice {cold_slice} must shrink below the even split {even}"
        );
        let floor = (even * DEFAULT_REBALANCE_FLOOR_PERCENT as usize) / 100;
        assert!(
            cold_slice >= floor,
            "cold shard slice {cold_slice} must keep the floor {floor}"
        );
        assert!(hot_slice + cold_slice <= total, "global budget holds");
        cache.assert_accounting_consistent();
    }

    #[test]
    fn admission_cost_policy_rejects_cheap_bulky_artifacts() {
        // A kind with a near-zero recompute EWMA (an instant 8 MiB alloc,
        // anchored by a preloaded zero-cost prior so scheduling noise in a
        // loaded test run cannot inflate the estimate past the threshold)
        // must never be admitted under `cost` — the store-cost threshold
        // for 8 MiB dwarfs its compute time — while an expensive resident
        // of another kind stays untouched and the caller's Arc is valid.
        const CHEAP_LEN: usize = 8 << 20;
        let cache = ArtifactCache::with_config(
            CacheConfig::default()
                .with_max_bytes(64 << 20)
                .with_admission(AdmissionPolicy::Cost),
        );
        cache.preload_cost_profile(&CostProfile {
            entries: vec![CostProfileEntry {
                kind: "custom",
                ewma_nanos: 0.0,
                samples: 1,
            }],
        });
        let resident_key = ArtifactKey::PairwiseDistances { data: 7 };
        let _: Arc<Vec<u64>> = cache.get_or_compute(resident_key, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            vec![1; 16]
        });
        assert_eq!(
            cache.stats().resident_entries,
            1,
            "an artifact whose recompute cost clears the threshold is admitted"
        );
        let calls = AtomicUsize::new(0);
        for attempt in 0..3 {
            let v: Arc<Vec<u8>> = cache.get_or_compute(custom(1), || {
                calls.fetch_add(1, Ordering::SeqCst);
                vec![0; CHEAP_LEN]
            });
            assert_eq!(v.len(), CHEAP_LEN, "the caller's Arc is always valid");
            assert_eq!(
                calls.load(Ordering::SeqCst),
                attempt + 1,
                "a rejected artifact is recomputed on every request"
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.admission_rejections, 3, "every commit was declined");
        assert_eq!(stats.resident_entries, 1, "residents are untouched");
        assert!(
            cache.get::<Vec<u64>>(resident_key).is_some(),
            "the expensive resident must survive admission rejections"
        );
        assert!(cache.get::<Vec<u8>>(custom(1)).is_none());
        cache.assert_accounting_consistent();
        // Control: the default `always` policy admits the same artifact.
        let always = ArtifactCache::with_config(CacheConfig::default().with_max_bytes(64 << 20));
        let _: Arc<Vec<u8>> = always.get_or_compute(custom(1), || vec![0; CHEAP_LEN]);
        // Overflow guard on the threshold arithmetic itself.
        assert!(ArtifactCache::admission_threshold(usize::MAX, usize::MAX, Some(1)) > 0);
        assert_eq!(always.stats().resident_entries, 1);
        assert_eq!(always.stats().admission_rejections, 0);
    }

    #[test]
    fn admission_policy_parses_names() {
        assert_eq!(
            AdmissionPolicy::parse("always"),
            Some(AdmissionPolicy::Always)
        );
        assert_eq!(
            AdmissionPolicy::parse(" Cost "),
            Some(AdmissionPolicy::Cost)
        );
        assert_eq!(AdmissionPolicy::parse("lfu"), None);
        assert_eq!(AdmissionPolicy::default().name(), "always");
        assert_eq!(AdmissionPolicy::Cost.name(), "cost");
    }

    #[test]
    fn cost_benefit_policy_retains_expensive_artifacts() {
        // Two same-sized artifacts, one ~40 ms to recompute and one ~free:
        // under entry pressure, plain LRU would evict the older (expensive)
        // one; the cost-benefit policy keeps it and drops the cheap one.
        let cache = ArtifactCache::with_config(
            CacheConfig::default()
                .with_max_entries(2)
                .with_policy(EvictionPolicy::CostBenefit),
        );
        let _: Arc<Vec<u64>> = cache.get_or_compute(custom(1), || {
            std::thread::sleep(std::time::Duration::from_millis(40));
            vec![1; 16]
        });
        let _: Arc<Vec<u64>> = cache.get_or_compute(custom(2), || vec![2; 16]);
        let _: Arc<Vec<u64>> = cache.get_or_compute(custom(3), || vec![3; 16]);
        assert!(
            cache.get::<Vec<u64>>(custom(1)).is_some(),
            "the expensive artifact must be retained beyond its LRU position"
        );
        assert!(
            cache.get::<Vec<u64>>(custom(2)).is_none(),
            "the cheap artifact is the cost-benefit victim"
        );
        assert_eq!(cache.stats().evictions, 1);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn cost_profile_learns_per_kind_ewmas() {
        let cache = ArtifactCache::new();
        let _: Arc<u64> = cache.get_or_compute(custom(1), || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            1
        });
        let _: Arc<u64> = cache.get_or_compute(ArtifactKey::PairwiseDistances { data: 9 }, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            2
        });
        // A hit must not add a sample.
        let _: Arc<u64> = cache.get_or_compute(custom(1), || 1);
        let profile = cache.cost_profile();
        assert_eq!(profile.entries.len(), 2);
        // KIND_NAMES order: pairwise before custom.
        assert_eq!(profile.entries[0].kind, "pairwise_distances");
        assert_eq!(profile.entries[0].samples, 1);
        assert!(profile.entries[0].ewma_nanos >= 2e6);
        assert_eq!(profile.entries[1].kind, "custom");
        assert_eq!(profile.entries[1].samples, 1);
        assert!(profile.entries[1].ewma_nanos >= 5e6);
    }

    #[test]
    fn preloaded_cost_profile_seeds_the_kind_ewmas() {
        let warm = ArtifactCache::new();
        let _: Arc<u64> = warm.get_or_compute(custom(1), || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            1
        });
        let exported = warm.cost_profile();

        let cold = ArtifactCache::new();
        cold.preload_cost_profile(&exported);
        let reloaded = cold.cost_profile();
        assert_eq!(reloaded, exported, "preload must round-trip the profile");

        // The first measurement on the cold cache blends with the learned
        // prior instead of replacing it: a ~0 ms compute lands well above
        // zero (at (1 - w)·prior) because the prior was ~20 ms.
        let _: Arc<u64> = cold.get_or_compute(custom(2), || 2);
        let after = cold.cost_profile();
        assert_eq!(after.entries[0].samples, 2);
        assert!(
            after.entries[0].ewma_nanos >= 0.5 * exported.entries[0].ewma_nanos,
            "cold-start estimate {} must be anchored by the preloaded prior {}",
            after.entries[0].ewma_nanos,
            exported.entries[0].ewma_nanos
        );

        // Unknown kinds and empty entries are ignored.
        let fresh = ArtifactCache::new();
        fresh.preload_cost_profile(&CostProfile {
            entries: vec![
                CostProfileEntry {
                    kind: "warp_drive",
                    ewma_nanos: 1e9,
                    samples: 3,
                },
                CostProfileEntry {
                    kind: "custom",
                    ewma_nanos: 1e6,
                    samples: 0,
                },
            ],
        });
        assert!(fresh.cost_profile().entries.is_empty());
    }

    #[test]
    fn kind_names_cover_every_key_variant() {
        let keys = [
            ArtifactKey::PairwiseDistances { data: 1 },
            ArtifactKey::CoreDistances {
                data: 1,
                min_pts: 2,
            },
            ArtifactKey::MutualReachabilityMst {
                data: 1,
                min_pts: 2,
            },
            ArtifactKey::DensityHierarchy {
                data: 1,
                min_pts: 2,
                min_cluster_size: 2,
            },
            ArtifactKey::FoldClosure { side: 1, fold: 0 },
            ArtifactKey::MpckSeeding {
                data: 1,
                constraints: 2,
                use_closure: true,
            },
            custom(1),
        ];
        for key in keys {
            assert!(
                ArtifactKey::KIND_NAMES.contains(&key.kind_name()),
                "{key:?} has an unlisted kind name"
            );
        }
    }

    #[test]
    fn eviction_policy_parses_names() {
        assert_eq!(EvictionPolicy::parse("lru"), Some(EvictionPolicy::Lru));
        assert_eq!(
            EvictionPolicy::parse(" Cost "),
            Some(EvictionPolicy::CostBenefit)
        );
        assert_eq!(
            EvictionPolicy::parse("cost_benefit"),
            Some(EvictionPolicy::CostBenefit)
        );
        assert_eq!(EvictionPolicy::parse("clock"), None);
        assert_eq!(EvictionPolicy::default().name(), "lru");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ArtifactCache::new();
        assert!(cache.config().is_unbounded());
        for k in 0..100u64 {
            let _: Arc<Vec<u64>> = cache.get_or_compute(custom(k), || vec![k; 50]);
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.resident_entries, 100);
        assert_eq!(stats.peak_resident_bytes, stats.resident_bytes);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn concurrent_eviction_never_tears_or_double_computes_in_flight() {
        // N threads hammer an over-budget cache: artifacts must never be
        // observed torn, a key must never be computed twice concurrently,
        // and the byte/entry accounting must match the live map afterwards.
        // Runs once unsharded and once with 4 shards (per-shard budget
        // slices) — the contract is identical.
        const KEYS: u64 = 16;
        const THREADS: usize = 8;
        const ROUNDS: usize = 200;
        let artifact_bytes = vec![0u64; 32].artifact_bytes();
        for shards in [1usize, 4] {
            // room for ~4 of the 16 artifacts -> constant eviction pressure
            let cache = Arc::new(ArtifactCache::with_config(
                CacheConfig::default()
                    .with_max_bytes(4 * artifact_bytes + 1)
                    .with_shards(shards),
            ));
            let in_flight: Arc<Vec<AtomicUsize>> =
                Arc::new((0..KEYS).map(|_| AtomicUsize::new(0)).collect());
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let cache = Arc::clone(&cache);
                    let in_flight = Arc::clone(&in_flight);
                    std::thread::spawn(move || {
                        for round in 0..ROUNDS {
                            let key = ((t + round) as u64 * 7 + round as u64) % KEYS;
                            let v: Arc<Vec<u64>> = cache.get_or_compute(custom(key), || {
                                let running =
                                    in_flight[key as usize].fetch_add(1, Ordering::SeqCst);
                                assert_eq!(running, 0, "key {key} computed twice concurrently");
                                let value = vec![key; 32];
                                in_flight[key as usize].fetch_sub(1, Ordering::SeqCst);
                                value
                            });
                            // a torn artifact would have wrong length or content
                            assert_eq!(v.len(), 32);
                            assert!(v.iter().all(|&x| x == key), "torn artifact for key {key}");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            cache.assert_accounting_consistent();
            let stats = cache.stats();
            assert!(stats.evictions > 0, "budget pressure must cause evictions");
            assert!(stats.resident_bytes <= 4 * artifact_bytes + 1);
            assert_eq!(stats.hits + stats.misses, (THREADS * ROUNDS) as u64);
        }
    }

    #[test]
    fn matrix_fingerprints_detect_content_changes() {
        let a = DataMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut b = a.clone();
        assert_eq!(fingerprint_matrix(&a), fingerprint_matrix(&b));
        b.set(1, 1, 4.5);
        assert_ne!(fingerprint_matrix(&a), fingerprint_matrix(&b));
        // shape participates in the fingerprint
        let flat = DataMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 1, 4);
        assert_ne!(fingerprint_matrix(&a), fingerprint_matrix(&flat));
    }

    #[test]
    fn index_fingerprints_are_order_sensitive() {
        assert_ne!(
            fingerprint_indices(&[1, 2, 3]),
            fingerprint_indices(&[3, 2, 1])
        );
        assert_eq!(
            fingerprint_indices(&[1, 2, 3]),
            fingerprint_indices(&[1, 2, 3])
        );
    }

    #[test]
    fn clear_empties_the_cache_and_resets_residency() {
        let cache = ArtifactCache::new();
        let _: Arc<u8> = cache.get_or_compute(ArtifactKey::Custom { domain: 1, key: 1 }, || 1);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache
            .get::<u8>(ArtifactKey::Custom { domain: 1, key: 1 })
            .is_none());
        let stats = cache.stats();
        assert_eq!(stats.resident_entries, 0);
        assert_eq!(stats.resident_bytes, 0);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn artifact_size_measures_nested_heap() {
        assert_eq!(7u64.artifact_bytes(), 8);
        assert_eq!(vec![1.0f64; 4].artifact_bytes(), 24 + 32);
        let nested = vec![vec![1.0f64; 2]; 3];
        assert_eq!(nested.artifact_bytes(), 24 + 3 * (24 + 16));
        assert_eq!("abc".to_string().artifact_bytes(), 24 + 3);
    }
}
