//! Content-keyed artifact cache with a bounded-memory lifecycle.
//!
//! CVCP model selection evaluates a grid of (parameter × fold × replica)
//! cells, and many expensive intermediates — pairwise distance matrices,
//! per-`MinPts` density hierarchies, transitive closures, seeding
//! neighbourhoods — are *identical* across large parts of that grid.  The
//! [`ArtifactCache`] stores those intermediates behind content-derived keys
//! so that every artifact is computed exactly once per engine, no matter how
//! many folds, trials or concurrent requests ask for it.
//!
//! Long-lived serving engines cannot let the cache grow monotonically, so
//! the store is *size-bounded*: a [`CacheConfig`] caps the resident bytes
//! (measured per artifact via [`ArtifactSize`]) and/or the resident entry
//! count, and the least-recently-used artifacts are evicted when a budget is
//! exceeded.  Eviction is purely a time/space trade: an evicted artifact is
//! recomputed on next use, results never change.
//!
//! Concurrency contract: two threads requesting the same key race to a
//! per-key [`OnceLock`]; the loser blocks until the winner's value is ready,
//! so an artifact is never computed twice *while in flight* and concurrent
//! callers always observe the same `Arc` (see the pointer-equality tests).
//! Only fully-initialized slots are eviction candidates — an in-flight
//! `get_or_compute` can never have its slot torn out from under it, and
//! callers holding an `Arc` to an evicted artifact keep a valid value (the
//! bytes are merely no longer counted as resident).

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cvcp_data::DataMatrix;

/// A 64-bit content fingerprint (FNV-1a over the value's raw bytes).
pub type Fingerprint = u64;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a hasher over `u64` words.
#[derive(Debug, Clone, Copy)]
pub struct FingerprintBuilder {
    state: u64,
}

impl FingerprintBuilder {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Mixes one 64-bit word into the fingerprint.
    #[inline]
    pub fn write_u64(&mut self, word: u64) -> &mut Self {
        for byte in word.to_le_bytes() {
            self.state ^= byte as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Mixes an `f64` by bit pattern (so `-0.0` and `0.0` differ — fine for
    /// cache identity, which only needs "same bytes ⇒ same key").
    #[inline]
    pub fn write_f64(&mut self, value: f64) -> &mut Self {
        self.write_u64(value.to_bits())
    }

    /// The finished fingerprint.
    pub fn finish(&self) -> Fingerprint {
        self.state
    }
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Content fingerprint of a data matrix (shape + every value's bit pattern).
pub fn fingerprint_matrix(matrix: &DataMatrix) -> Fingerprint {
    let mut h = FingerprintBuilder::new();
    h.write_u64(matrix.n_rows() as u64);
    h.write_u64(matrix.n_cols() as u64);
    for &v in matrix.as_slice() {
        h.write_f64(v);
    }
    h.finish()
}

/// Content fingerprint of a slice of indices (used for fold membership,
/// labelled subsets, constraint endpoints…).
pub fn fingerprint_indices(indices: &[usize]) -> Fingerprint {
    let mut h = FingerprintBuilder::new();
    h.write_u64(indices.len() as u64);
    for &i in indices {
        h.write_u64(i as u64);
    }
    h.finish()
}

/// Identity of a cached artifact.
///
/// Keys combine the *content* fingerprint of the inputs with the structural
/// parameters of the computation, so equal inputs share work across folds,
/// trials and concurrent requests while different inputs can never collide
/// semantically (fingerprints are 64-bit content hashes; collisions are
/// astronomically unlikely at this workload's cardinalities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKey {
    /// Full pairwise distance matrix of a data set under the default metric.
    PairwiseDistances {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
    },
    /// Per-object core distances for a `MinPts`.
    CoreDistances {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
        /// The density smoothing parameter.
        min_pts: usize,
    },
    /// Mutual-reachability MST for a `MinPts`.
    MutualReachabilityMst {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
        /// The density smoothing parameter.
        min_pts: usize,
    },
    /// Condensed density hierarchy for a (`MinPts`, minimum cluster size).
    DensityHierarchy {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
        /// The density smoothing parameter.
        min_pts: usize,
        /// Minimum cluster size of the condensed tree.
        min_cluster_size: usize,
    },
    /// Transitive closure of one cross-validation fold's training side
    /// information.
    FoldClosure {
        /// Fingerprint of the side information realisation.
        side: Fingerprint,
        /// Fold index.
        fold: usize,
    },
    /// MPCKMeans seeding structures (closed constraint set + must-link
    /// neighbourhood centroid candidates) for one side-information
    /// realisation — invariant in the cluster count `k`, so one artifact
    /// serves the whole parameter sweep of a fold.
    MpckSeeding {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
        /// Fingerprint of the constraint realisation.
        constraints: Fingerprint,
        /// Whether the seeding was computed over the transitive closure of
        /// the constraints (must match the algorithm configuration).
        use_closure: bool,
    },
    /// Escape hatch for downstream crates: a caller-defined domain plus a
    /// caller-computed fingerprint.
    Custom {
        /// Caller-chosen namespace (pick a random constant per use site).
        domain: u64,
        /// Caller-computed content fingerprint.
        key: Fingerprint,
    },
}

/// Approximate resident size of a cached artifact, in bytes.
///
/// The cache charges every artifact against [`CacheConfig::max_bytes`] using
/// this trait, measured once at insertion.  Implementations should return
/// the artifact's *owned* footprint — stack size plus owned heap — and may
/// approximate (`len` instead of `capacity`, padding ignored); budgets are
/// resource knobs, not exact allocators.
pub trait ArtifactSize {
    /// Approximate owned size in bytes (stack + heap).
    fn artifact_bytes(&self) -> usize;
}

macro_rules! scalar_artifact_size {
    ($($t:ty),* $(,)?) => {
        $(impl ArtifactSize for $t {
            fn artifact_bytes(&self) -> usize {
                std::mem::size_of::<Self>()
            }
        })*
    };
}

scalar_artifact_size!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char
);

impl<T: ArtifactSize> ArtifactSize for Vec<T> {
    fn artifact_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.iter().map(ArtifactSize::artifact_bytes).sum::<usize>()
    }
}

impl ArtifactSize for String {
    fn artifact_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.len()
    }
}

impl<A: ArtifactSize, B: ArtifactSize> ArtifactSize for (A, B) {
    fn artifact_bytes(&self) -> usize {
        self.0.artifact_bytes() + self.1.artifact_bytes()
    }
}

/// Memory budget of an [`ArtifactCache`].
///
/// `None` means "unbounded" for either knob.  Budgets apply to *resident*
/// (fully computed) artifacts: in-flight computations are never evicted, so
/// the map may transiently hold more uninitialized slots than
/// `max_entries`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheConfig {
    /// Maximum resident artifact bytes (as measured by [`ArtifactSize`]).
    pub max_bytes: Option<usize>,
    /// Maximum number of resident artifacts.
    pub max_entries: Option<usize>,
}

impl CacheConfig {
    /// No budgets: the cache grows until cleared (the pre-eviction default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Caps the resident artifact bytes.
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Caps the number of resident artifacts.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = Some(max_entries);
        self
    }

    /// `true` when neither budget is set.
    pub fn is_unbounded(&self) -> bool {
        self.max_bytes.is_none() && self.max_entries.is_none()
    }
}

/// A stored artifact: the type-erased value plus its measured byte size.
type Stored = (Arc<dyn Any + Send + Sync>, usize);
type Slot = Arc<OnceLock<Stored>>;

/// One cache entry: the shared slot, its byte size once committed, and the
/// logical timestamp of its last use (for LRU eviction).
#[derive(Debug)]
struct Entry {
    slot: Slot,
    /// `Some(bytes)` once the artifact is computed *and* committed to the
    /// resident accounting; `None` while the computation is in flight.
    bytes: Option<usize>,
    last_used: u64,
}

/// The lock-protected part of the cache.
#[derive(Debug, Default)]
struct CacheMap {
    entries: HashMap<ArtifactKey, Entry>,
    /// Sum of `bytes` over committed entries.
    resident_bytes: usize,
    /// Number of committed entries.
    resident_entries: usize,
    /// High-water mark of `resident_bytes` (after budget enforcement).
    peak_resident_bytes: usize,
    /// Logical clock for LRU ordering.
    tick: u64,
}

/// Cache hit/miss/eviction counters plus a snapshot of residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the artifact (or, for [`ArtifactCache::get`],
    /// found nothing).
    pub misses: u64,
    /// Artifacts evicted to stay within the configured budgets.
    pub evictions: u64,
    /// Total bytes released by evictions.
    pub evicted_bytes: u64,
    /// Resident (committed) artifacts at snapshot time.
    pub resident_entries: usize,
    /// Resident artifact bytes at snapshot time.
    pub resident_bytes: usize,
    /// High-water mark of resident bytes over the cache's lifetime.
    pub peak_resident_bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent, content-keyed, size-bounded store of shared computation
/// artifacts with LRU eviction.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    map: Mutex<CacheMap>,
    config: CacheConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl ArtifactCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with the given memory budget.
    pub fn with_config(config: CacheConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// The cache's budget configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Returns the cached artifact for `key`, computing it with `compute` on
    /// first use.  Concurrent callers for the same key block until the first
    /// computation finishes and then share the same `Arc`.
    ///
    /// When a budget is configured, committing a new artifact evicts the
    /// least-recently-used resident artifacts until the budgets hold again
    /// (the freshly computed artifact is evicted last, and only if it alone
    /// exceeds the budget — the returned `Arc` stays valid either way).
    ///
    /// # Panics
    ///
    /// Panics if the same key was previously populated with a different type
    /// (keys are expected to map 1:1 to artifact types).
    pub fn get_or_compute<T, F>(&self, key: ArtifactKey, compute: F) -> Arc<T>
    where
        T: Send + Sync + ArtifactSize + 'static,
        F: FnOnce() -> T,
    {
        let slot: Slot = {
            let mut map = self.map.lock().expect("artifact cache lock");
            map.tick += 1;
            let tick = map.tick;
            let entry = map.entries.entry(key).or_insert_with(|| Entry {
                slot: Arc::default(),
                bytes: None,
                last_used: tick,
            });
            entry.last_used = tick;
            entry.slot.clone()
        };
        // The map lock is released before (potentially slow) initialisation,
        // so unrelated keys never serialise behind each other.
        let mut computed = false;
        let (value, bytes) = slot
            .get_or_init(|| {
                computed = true;
                let value = compute();
                let bytes = value.artifact_bytes();
                (Arc::new(value) as Arc<dyn Any + Send + Sync>, bytes)
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.commit(key, &slot, bytes);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("artifact type mismatch for cache key {key:?}"))
    }

    /// Returns the artifact for `key` if it is already cached (a hit when a
    /// computed value is present, a miss otherwise; never computes or
    /// blocks on an in-flight computation).
    pub fn get<T: Send + Sync + 'static>(&self, key: ArtifactKey) -> Option<Arc<T>> {
        let slot = {
            let mut map = self.map.lock().expect("artifact cache lock");
            map.tick += 1;
            let tick = map.tick;
            match map.entries.get_mut(&key) {
                Some(entry) if entry.slot.get().is_some() => {
                    entry.last_used = tick;
                    Some(entry.slot.clone())
                }
                _ => None,
            }
        };
        let Some(slot) = slot else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let (value, _) = slot.get().expect("slot checked initialized").clone();
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(
            value
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("artifact type mismatch for cache key {key:?}")),
        )
    }

    /// Books a freshly computed artifact into the resident accounting and
    /// enforces the budgets.  `slot` identifies the computation: if the
    /// entry was removed (or replaced) concurrently — e.g. by [`Self::clear`]
    /// — the bytes are simply not counted as resident.
    fn commit(&self, key: ArtifactKey, slot: &Slot, bytes: usize) {
        let mut map = self.map.lock().expect("artifact cache lock");
        map.tick += 1;
        let tick = map.tick;
        if let Some(entry) = map.entries.get_mut(&key) {
            if Arc::ptr_eq(&entry.slot, slot) && entry.bytes.is_none() {
                entry.bytes = Some(bytes);
                // Re-stamp recency at commit time: the lookup tick was taken
                // before a potentially slow compute, during which other keys
                // may have been touched — without this, the freshly computed
                // artifact could be the immediate LRU victim.
                entry.last_used = tick;
                map.resident_bytes += bytes;
                map.resident_entries += 1;
            }
        }
        self.enforce_budget(&mut map);
        map.peak_resident_bytes = map.peak_resident_bytes.max(map.resident_bytes);
    }

    /// Evicts least-recently-used *committed* entries until both budgets
    /// hold.  In-flight (uninitialized) slots are never candidates, so
    /// concurrent `get_or_compute` calls are never torn.
    fn enforce_budget(&self, map: &mut CacheMap) {
        loop {
            let over_bytes = self
                .config
                .max_bytes
                .is_some_and(|max| map.resident_bytes > max);
            let over_entries = self
                .config
                .max_entries
                .is_some_and(|max| map.resident_entries > max);
            if !over_bytes && !over_entries {
                return;
            }
            let victim = map
                .entries
                .iter()
                .filter(|(_, e)| e.bytes.is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            let Some(victim) = victim else { return };
            let entry = map.entries.remove(&victim).expect("victim present");
            let bytes = entry.bytes.expect("victim committed");
            map.resident_bytes -= bytes;
            map.resident_entries -= 1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.evicted_bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Number of populated entries.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("artifact cache lock")
            .entries
            .values()
            .filter(|entry| entry.slot.get().is_some())
            .count()
    }

    /// `true` when no entry has been populated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and resets the residency accounting (does not reset
    /// the hit/miss/eviction counters or the peak watermark).
    pub fn clear(&self) {
        let mut map = self.map.lock().expect("artifact cache lock");
        map.entries.clear();
        map.resident_bytes = 0;
        map.resident_entries = 0;
    }

    /// Snapshot of the counters and residency state.
    pub fn stats(&self) -> CacheStats {
        let map = self.map.lock().expect("artifact cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            resident_entries: map.resident_entries,
            resident_bytes: map.resident_bytes,
            peak_resident_bytes: map.peak_resident_bytes,
        }
    }

    /// Asserts that the incremental residency accounting matches the live
    /// map exactly (test/diagnostic helper).
    ///
    /// # Panics
    ///
    /// Panics when `resident_bytes`/`resident_entries` drifted from the sum
    /// over committed entries.
    #[doc(hidden)]
    pub fn assert_accounting_consistent(&self) {
        let map = self.map.lock().expect("artifact cache lock");
        let (entries, bytes) = map
            .entries
            .values()
            .filter_map(|e| e.bytes)
            .fold((0usize, 0usize), |(n, b), eb| (n + 1, b + eb));
        assert_eq!(
            (map.resident_entries, map.resident_bytes),
            (entries, bytes),
            "residency accounting drifted from the live map"
        );
        if let Some(max) = self.config.max_bytes {
            assert!(
                map.resident_bytes <= max,
                "resident bytes {} exceed the budget {max}",
                map.resident_bytes
            );
        }
        if let Some(max) = self.config.max_entries {
            assert!(
                map.resident_entries <= max,
                "resident entries {} exceed the budget {max}",
                map.resident_entries
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn custom(key: u64) -> ArtifactKey {
        ArtifactKey::Custom { domain: 42, key }
    }

    #[test]
    fn computes_once_and_shares_the_arc() {
        let cache = ArtifactCache::new();
        let calls = AtomicUsize::new(0);
        let key = ArtifactKey::PairwiseDistances { data: 42 };
        let a: Arc<Vec<f64>> = cache.get_or_compute(key, || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec![1.0, 2.0]
        });
        let b: Arc<Vec<f64>> = cache.get_or_compute(key, || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec![3.0]
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.resident_entries, 1);
        assert_eq!(stats.resident_bytes, a.artifact_bytes());
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let cache = ArtifactCache::new();
        let a: Arc<usize> = cache.get_or_compute(
            ArtifactKey::CoreDistances {
                data: 1,
                min_pts: 3,
            },
            || 3,
        );
        let b: Arc<usize> = cache.get_or_compute(
            ArtifactKey::CoreDistances {
                data: 1,
                min_pts: 5,
            },
            || 5,
        );
        assert_eq!((*a, *b), (3, 5));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_requests_share_one_computation() {
        let cache = Arc::new(ArtifactCache::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let key = ArtifactKey::Custom { domain: 7, key: 7 };
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                std::thread::spawn(move || {
                    let v: Arc<u64> = cache.get_or_compute(key, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        99
                    });
                    *v
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn get_counts_misses_symmetrically() {
        let cache = ArtifactCache::new();
        // absent key -> miss
        assert!(cache.get::<u64>(custom(1)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        assert_eq!(stats.hit_rate(), 0.0);
        // populate (one compute miss), then a get hit
        let _: Arc<u64> = cache.get_or_compute(custom(1), || 5);
        assert_eq!(*cache.get::<u64>(custom(1)).unwrap(), 5);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_max_entries_and_recency() {
        let cache = ArtifactCache::with_config(CacheConfig::default().with_max_entries(2));
        let _: Arc<u64> = cache.get_or_compute(custom(1), || 1);
        let _: Arc<u64> = cache.get_or_compute(custom(2), || 2);
        // touch key 1 so key 2 is the LRU victim
        let _: Arc<u64> = cache.get_or_compute(custom(1), || 11);
        let _: Arc<u64> = cache.get_or_compute(custom(3), || 3);
        assert!(cache.get::<u64>(custom(1)).is_some());
        assert!(cache.get::<u64>(custom(2)).is_none(), "LRU entry evicted");
        assert!(cache.get::<u64>(custom(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident_entries, 2);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn byte_budget_is_never_exceeded() {
        // Each Vec<u64> artifact: 24 bytes of Vec header + 8 per element.
        let artifact_bytes = vec![0u64; 10].artifact_bytes();
        let budget = 2 * artifact_bytes + artifact_bytes / 2; // fits 2, not 3
        let cache = ArtifactCache::with_config(CacheConfig::default().with_max_bytes(budget));
        for k in 0..6u64 {
            let v: Arc<Vec<u64>> = cache.get_or_compute(custom(k), || vec![k; 10]);
            assert_eq!(v.len(), 10);
            let stats = cache.stats();
            assert!(stats.resident_bytes <= budget);
            assert!(stats.peak_resident_bytes <= budget);
        }
        let stats = cache.stats();
        assert_eq!(stats.resident_entries, 2);
        assert_eq!(stats.evictions, 4);
        assert_eq!(stats.evicted_bytes, 4 * artifact_bytes as u64);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn freshly_computed_artifact_is_not_the_first_eviction_victim() {
        // The lookup tick is taken before a potentially slow compute; other
        // keys touched during that compute (here: a nested get_or_compute,
        // exactly the FOSC tree-over-pairwise pattern) must not make the
        // fresh artifact look least-recently-used at commit time.
        let artifact_bytes = vec![0u64; 8].artifact_bytes();
        let cache =
            ArtifactCache::with_config(CacheConfig::default().with_max_bytes(artifact_bytes));
        let outer: Arc<Vec<u64>> = cache.get_or_compute(custom(1), || {
            let inner: Arc<Vec<u64>> = cache.get_or_compute(custom(2), || vec![2; 8]);
            inner.iter().map(|&x| x - 1).collect()
        });
        assert_eq!(outer[0], 1);
        // The nested (older-used) artifact is the victim, not the fresh one.
        assert!(cache.get::<Vec<u64>>(custom(1)).is_some());
        assert!(cache.get::<Vec<u64>>(custom(2)).is_none());
        cache.assert_accounting_consistent();
    }

    #[test]
    fn oversized_artifact_is_computed_then_released() {
        let cache = ArtifactCache::with_config(CacheConfig::default().with_max_bytes(8));
        let v: Arc<Vec<u64>> = cache.get_or_compute(custom(0), || vec![7; 100]);
        // the caller's Arc is valid even though the artifact cannot stay
        assert_eq!(v[99], 7);
        let stats = cache.stats();
        assert_eq!(stats.resident_entries, 0);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.evictions, 1);
        assert!(stats.peak_resident_bytes <= 8);
        // next request recomputes
        let w: Arc<Vec<u64>> = cache.get_or_compute(custom(0), || vec![8; 100]);
        assert_eq!(w[0], 8);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ArtifactCache::new();
        assert!(cache.config().is_unbounded());
        for k in 0..100u64 {
            let _: Arc<Vec<u64>> = cache.get_or_compute(custom(k), || vec![k; 50]);
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.resident_entries, 100);
        assert_eq!(stats.peak_resident_bytes, stats.resident_bytes);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn concurrent_eviction_never_tears_or_double_computes_in_flight() {
        // N threads hammer an over-budget cache: artifacts must never be
        // observed torn, a key must never be computed twice concurrently,
        // and the byte/entry accounting must match the live map afterwards.
        const KEYS: u64 = 16;
        const THREADS: usize = 8;
        const ROUNDS: usize = 200;
        let artifact_bytes = vec![0u64; 32].artifact_bytes();
        // room for ~4 of the 16 artifacts -> constant eviction pressure
        let cache = Arc::new(ArtifactCache::with_config(
            CacheConfig::default().with_max_bytes(4 * artifact_bytes + 1),
        ));
        let in_flight: Arc<Vec<AtomicUsize>> =
            Arc::new((0..KEYS).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let in_flight = Arc::clone(&in_flight);
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        let key = ((t + round) as u64 * 7 + round as u64) % KEYS;
                        let v: Arc<Vec<u64>> = cache.get_or_compute(custom(key), || {
                            let running = in_flight[key as usize].fetch_add(1, Ordering::SeqCst);
                            assert_eq!(running, 0, "key {key} computed twice concurrently");
                            let value = vec![key; 32];
                            in_flight[key as usize].fetch_sub(1, Ordering::SeqCst);
                            value
                        });
                        // a torn artifact would have wrong length or content
                        assert_eq!(v.len(), 32);
                        assert!(v.iter().all(|&x| x == key), "torn artifact for key {key}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        cache.assert_accounting_consistent();
        let stats = cache.stats();
        assert!(stats.evictions > 0, "budget pressure must cause evictions");
        assert!(stats.resident_bytes <= 4 * artifact_bytes + 1);
        assert_eq!(stats.hits + stats.misses, (THREADS * ROUNDS) as u64);
    }

    #[test]
    fn matrix_fingerprints_detect_content_changes() {
        let a = DataMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut b = a.clone();
        assert_eq!(fingerprint_matrix(&a), fingerprint_matrix(&b));
        b.set(1, 1, 4.5);
        assert_ne!(fingerprint_matrix(&a), fingerprint_matrix(&b));
        // shape participates in the fingerprint
        let flat = DataMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 1, 4);
        assert_ne!(fingerprint_matrix(&a), fingerprint_matrix(&flat));
    }

    #[test]
    fn index_fingerprints_are_order_sensitive() {
        assert_ne!(
            fingerprint_indices(&[1, 2, 3]),
            fingerprint_indices(&[3, 2, 1])
        );
        assert_eq!(
            fingerprint_indices(&[1, 2, 3]),
            fingerprint_indices(&[1, 2, 3])
        );
    }

    #[test]
    fn clear_empties_the_cache_and_resets_residency() {
        let cache = ArtifactCache::new();
        let _: Arc<u8> = cache.get_or_compute(ArtifactKey::Custom { domain: 1, key: 1 }, || 1);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache
            .get::<u8>(ArtifactKey::Custom { domain: 1, key: 1 })
            .is_none());
        let stats = cache.stats();
        assert_eq!(stats.resident_entries, 0);
        assert_eq!(stats.resident_bytes, 0);
        cache.assert_accounting_consistent();
    }

    #[test]
    fn artifact_size_measures_nested_heap() {
        assert_eq!(7u64.artifact_bytes(), 8);
        assert_eq!(vec![1.0f64; 4].artifact_bytes(), 24 + 32);
        let nested = vec![vec![1.0f64; 2]; 3];
        assert_eq!(nested.artifact_bytes(), 24 + 3 * (24 + 16));
        assert_eq!("abc".to_string().artifact_bytes(), 24 + 3);
    }
}
