//! Content-keyed artifact cache.
//!
//! CVCP model selection evaluates a grid of (parameter × fold × replica)
//! cells, and many expensive intermediates — pairwise distance matrices,
//! per-`MinPts` density hierarchies, transitive closures — are *identical*
//! across large parts of that grid.  The [`ArtifactCache`] stores those
//! intermediates behind content-derived keys so that every artifact is
//! computed exactly once per engine, no matter how many folds, trials or
//! concurrent requests ask for it.
//!
//! Concurrency contract: two threads requesting the same key race to a
//! per-key [`OnceLock`]; the loser blocks until the winner's value is ready,
//! so an artifact is never computed twice and callers always observe the
//! same `Arc` (see the pointer-equality tests).

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cvcp_data::DataMatrix;

/// A 64-bit content fingerprint (FNV-1a over the value's raw bytes).
pub type Fingerprint = u64;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a hasher over `u64` words.
#[derive(Debug, Clone, Copy)]
pub struct FingerprintBuilder {
    state: u64,
}

impl FingerprintBuilder {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Mixes one 64-bit word into the fingerprint.
    #[inline]
    pub fn write_u64(&mut self, word: u64) -> &mut Self {
        for byte in word.to_le_bytes() {
            self.state ^= byte as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Mixes an `f64` by bit pattern (so `-0.0` and `0.0` differ — fine for
    /// cache identity, which only needs "same bytes ⇒ same key").
    #[inline]
    pub fn write_f64(&mut self, value: f64) -> &mut Self {
        self.write_u64(value.to_bits())
    }

    /// The finished fingerprint.
    pub fn finish(&self) -> Fingerprint {
        self.state
    }
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Content fingerprint of a data matrix (shape + every value's bit pattern).
pub fn fingerprint_matrix(matrix: &DataMatrix) -> Fingerprint {
    let mut h = FingerprintBuilder::new();
    h.write_u64(matrix.n_rows() as u64);
    h.write_u64(matrix.n_cols() as u64);
    for &v in matrix.as_slice() {
        h.write_f64(v);
    }
    h.finish()
}

/// Content fingerprint of a slice of indices (used for fold membership,
/// labelled subsets, constraint endpoints…).
pub fn fingerprint_indices(indices: &[usize]) -> Fingerprint {
    let mut h = FingerprintBuilder::new();
    h.write_u64(indices.len() as u64);
    for &i in indices {
        h.write_u64(i as u64);
    }
    h.finish()
}

/// Identity of a cached artifact.
///
/// Keys combine the *content* fingerprint of the inputs with the structural
/// parameters of the computation, so equal inputs share work across folds,
/// trials and concurrent requests while different inputs can never collide
/// semantically (fingerprints are 64-bit content hashes; collisions are
/// astronomically unlikely at this workload's cardinalities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKey {
    /// Full pairwise distance matrix of a data set under the default metric.
    PairwiseDistances {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
    },
    /// Per-object core distances for a `MinPts`.
    CoreDistances {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
        /// The density smoothing parameter.
        min_pts: usize,
    },
    /// Mutual-reachability MST for a `MinPts`.
    MutualReachabilityMst {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
        /// The density smoothing parameter.
        min_pts: usize,
    },
    /// Condensed density hierarchy for a (`MinPts`, minimum cluster size).
    DensityHierarchy {
        /// Fingerprint of the data matrix.
        data: Fingerprint,
        /// The density smoothing parameter.
        min_pts: usize,
        /// Minimum cluster size of the condensed tree.
        min_cluster_size: usize,
    },
    /// Transitive closure of one cross-validation fold's training side
    /// information.
    FoldClosure {
        /// Fingerprint of the side information realisation.
        side: Fingerprint,
        /// Fold index.
        fold: usize,
    },
    /// Escape hatch for downstream crates: a caller-defined domain plus a
    /// caller-computed fingerprint.
    Custom {
        /// Caller-chosen namespace (pick a random constant per use site).
        domain: u64,
        /// Caller-computed content fingerprint.
        key: Fingerprint,
    },
}

type Slot = Arc<OnceLock<Arc<dyn Any + Send + Sync>>>;

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the artifact.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent, content-keyed store of shared computation artifacts.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    slots: Mutex<HashMap<ArtifactKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached artifact for `key`, computing it with `compute` on
    /// first use.  Concurrent callers for the same key block until the first
    /// computation finishes and then share the same `Arc`.
    ///
    /// # Panics
    ///
    /// Panics if the same key was previously populated with a different type
    /// (keys are expected to map 1:1 to artifact types).
    pub fn get_or_compute<T, F>(&self, key: ArtifactKey, compute: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let slot: Slot = {
            let mut slots = self.slots.lock().expect("artifact cache lock");
            slots.entry(key).or_default().clone()
        };
        // The map lock is released before (potentially slow) initialisation,
        // so unrelated keys never serialise behind each other.
        let mut computed = false;
        let value = slot
            .get_or_init(|| {
                computed = true;
                Arc::new(compute()) as Arc<dyn Any + Send + Sync>
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("artifact type mismatch for cache key {key:?}"))
    }

    /// Returns the artifact for `key` if it is already cached (counts as a
    /// hit when present; never computes).
    pub fn get<T: Send + Sync + 'static>(&self, key: ArtifactKey) -> Option<Arc<T>> {
        let slot = {
            let slots = self.slots.lock().expect("artifact cache lock");
            slots.get(&key).cloned()
        }?;
        let value = slot.get()?.clone();
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(
            value
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("artifact type mismatch for cache key {key:?}")),
        )
    }

    /// Number of populated entries.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .expect("artifact cache lock")
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    /// `true` when no entry has been populated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (does not reset the hit/miss counters).
    pub fn clear(&self) {
        self.slots.lock().expect("artifact cache lock").clear();
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_and_shares_the_arc() {
        let cache = ArtifactCache::new();
        let calls = AtomicUsize::new(0);
        let key = ArtifactKey::PairwiseDistances { data: 42 };
        let a: Arc<Vec<f64>> = cache.get_or_compute(key, || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec![1.0, 2.0]
        });
        let b: Arc<Vec<f64>> = cache.get_or_compute(key, || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec![3.0]
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let cache = ArtifactCache::new();
        let a: Arc<usize> = cache.get_or_compute(
            ArtifactKey::CoreDistances {
                data: 1,
                min_pts: 3,
            },
            || 3,
        );
        let b: Arc<usize> = cache.get_or_compute(
            ArtifactKey::CoreDistances {
                data: 1,
                min_pts: 5,
            },
            || 5,
        );
        assert_eq!((*a, *b), (3, 5));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_requests_share_one_computation() {
        let cache = Arc::new(ArtifactCache::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let key = ArtifactKey::Custom { domain: 7, key: 7 };
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                std::thread::spawn(move || {
                    let v: Arc<u64> = cache.get_or_compute(key, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        99
                    });
                    *v
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn matrix_fingerprints_detect_content_changes() {
        let a = DataMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut b = a.clone();
        assert_eq!(fingerprint_matrix(&a), fingerprint_matrix(&b));
        b.set(1, 1, 4.5);
        assert_ne!(fingerprint_matrix(&a), fingerprint_matrix(&b));
        // shape participates in the fingerprint
        let flat = DataMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 1, 4);
        assert_ne!(fingerprint_matrix(&a), fingerprint_matrix(&flat));
    }

    #[test]
    fn index_fingerprints_are_order_sensitive() {
        assert_ne!(
            fingerprint_indices(&[1, 2, 3]),
            fingerprint_indices(&[3, 2, 1])
        );
        assert_eq!(
            fingerprint_indices(&[1, 2, 3]),
            fingerprint_indices(&[1, 2, 3])
        );
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = ArtifactCache::new();
        let _: Arc<u8> = cache.get_or_compute(ArtifactKey::Custom { domain: 1, key: 1 }, || 1);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache
            .get::<u8>(ArtifactKey::Custom { domain: 1, key: 1 })
            .is_none());
    }
}
