//! Shared infrastructure for the experiment binaries that regenerate the
//! tables and figures of the CVCP paper (Pourrajabi et al., EDBT 2014).
//!
//! Every binary supports two modes:
//!
//! * **quick** (default): reduced trial counts and a small slice of the
//!   ALOI-like collection, so the whole suite runs in minutes on a laptop;
//! * **full** (`--full`): the paper-scale protocol — 50 trials, 100 ALOI
//!   data sets, 10-fold cross-validation.
//!
//! All binaries print the paper-style rows to stdout and write the raw
//! results as JSON under `target/experiments/`.

use cvcp_core::experiment::{
    run_experiment_on, summarize, ExperimentConfig, ExperimentSummary, SideInfoSpec,
};
use cvcp_core::{
    CacheWarmup, CvcpConfig, FoscMethod, MpckMethod, ParameterizedMethod, WarmupReport,
};
use cvcp_data::Dataset;
use cvcp_engine::{
    AdmissionPolicy, ArtifactCache, CacheConfig, CostProfile, CostProfileEntry, Engine,
    EvictionPolicy,
};
use cvcp_metrics::stats::{mean, std_dev};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

pub use cvcp_core::json;

use json::{Json, ToJson};

/// The paper's MinPts range for FOSC-OPTICSDend.
pub const MINPTS_RANGE: [usize; 8] = [3, 6, 9, 12, 15, 18, 21, 24];

/// Base random seed shared by all experiments (reproducibility).
pub const BASE_SEED: u64 = 20_140_324; // EDBT 2014, March 24

/// Run-time configuration derived from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mode {
    /// `true` for the paper-scale protocol.
    pub full: bool,
}

impl Mode {
    /// Parses the command-line arguments (`--full` switches to paper scale).
    pub fn from_args() -> Self {
        let full = std::env::args().any(|a| a == "--full");
        Self { full }
    }

    /// Number of experiment trials per (data set, setting) cell.
    pub fn n_trials(&self) -> usize {
        if self.full {
            50
        } else {
            5
        }
    }

    /// Number of cross-validation folds.
    pub fn n_folds(&self) -> usize {
        if self.full {
            10
        } else {
            5
        }
    }

    /// Number of ALOI-like data sets used when a single "ALOI" column is
    /// reported (Tables 1–16 average over the collection).
    pub fn aloi_collection_size(&self) -> usize {
        if self.full {
            100
        } else {
            3
        }
    }

    /// Number of worker threads (`CVCP_THREADS` overrides the hardware
    /// default).
    pub fn n_threads(&self) -> usize {
        threads_from_env()
    }

    /// Builds the [`ExperimentConfig`] for a given parameter range.
    pub fn config(&self, params: Vec<usize>, with_silhouette: bool) -> ExperimentConfig {
        ExperimentConfig {
            n_trials: self.n_trials(),
            cvcp: CvcpConfig {
                n_folds: self.n_folds(),
                stratified: true,
            },
            params,
            seed: BASE_SEED,
            with_silhouette,
            n_threads: self.n_threads(),
        }
    }
}

/// The artifact-cache configuration for the shared engine, read from the
/// environment:
///
/// * `CVCP_CACHE_MAX_MB` — cap on resident artifact bytes, in MiB;
/// * `CVCP_CACHE_MAX_ENTRIES` — cap on resident artifact count;
/// * `CVCP_CACHE_SHARDS` — independent cache shards (rounded up to a power
///   of two; default 1).  Each shard takes its own lock and its own even
///   slice of the byte/entry budgets;
/// * `CVCP_CACHE_POLICY` — eviction policy: `lru` (default) or `cost`
///   (cost-benefit: victims weighed by recompute cost per byte);
/// * `CVCP_CACHE_ADMISSION` — admission policy: `always` (default) or
///   `cost` (skip storing artifacts whose learned recompute cost is below
///   the store-cost threshold derived from their size and shard pressure);
/// * `CVCP_CACHE_REBALANCE_INTERVAL` — cache operations between adaptive
///   shard-budget rebalances (default 32; `0` disables rebalancing —
///   and with it commit-time slice borrowing — pinning the even
///   per-shard slices).
///
/// Unset (or unparsable) variables keep their defaults (budgets stay
/// unbounded).  None of these knobs can change results — sharding only
/// repartitions the store, budgets/policies only trade recompute time
/// for memory, and admission/rebalancing only decide *what stays
/// resident*; selections are bit-identical under any setting.
pub fn cache_config_from_env() -> CacheConfig {
    // cvcp: allow(D3, reason = "generic reader closure; the literal CVCP_CACHE_* names are passed in below and checked there")
    cache_config_from(|var| std::env::var(var).ok())
}

/// [`cache_config_from_env`] with the variable lookup injected — pure, so
/// the knob parsing is testable without mutating the process environment
/// (`set_var` concurrent with `getenv` in parallel tests is a data race).
fn cache_config_from(lookup: impl Fn(&str) -> Option<String>) -> CacheConfig {
    let read = |var: &str| -> Option<usize> { lookup(var)?.trim().parse().ok() };
    CacheConfig {
        // Saturating: an absurdly large MiB value means "effectively
        // unbounded", not an overflow panic (or silent wrap) at startup.
        max_bytes: read("CVCP_CACHE_MAX_MB").map(|mb| mb.saturating_mul(1024 * 1024)),
        max_entries: read("CVCP_CACHE_MAX_ENTRIES"),
        shards: read("CVCP_CACHE_SHARDS").unwrap_or(1),
        policy: lookup("CVCP_CACHE_POLICY")
            .and_then(|name| EvictionPolicy::parse(&name))
            .unwrap_or_default(),
        admission: lookup("CVCP_CACHE_ADMISSION")
            .and_then(|name| AdmissionPolicy::parse(&name))
            .unwrap_or_default(),
        rebalance_interval: lookup("CVCP_CACHE_REBALANCE_INTERVAL")
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(cvcp_engine::DEFAULT_REBALANCE_INTERVAL),
        ..CacheConfig::default()
    }
}

/// The engine worker count, from the environment: `CVCP_THREADS` when set
/// (and parsable), otherwise the machine's available parallelism.
pub fn threads_from_env() -> usize {
    std::env::var("CVCP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
}

/// Builds an engine from the environment knobs ([`threads_from_env`] +
/// [`cache_config_from_env`]) — the one configuration path shared by the
/// experiment binaries ([`shared_engine`]) and the `serve` front-end.
///
/// When `CVCP_CACHE_COST_PROFILE=<path>` is set, the per-artifact-kind
/// compute-time EWMAs are reloaded from that file (when it exists and
/// parses) so a cold engine starts with learned
/// [`EvictionPolicy::CostBenefit`] weights, and a drop hook is installed
/// that dumps the updated profile back to the same path when the engine
/// shuts down.  Profiles are pure scheduling/eviction hints — they can
/// never change results.
pub fn engine_from_env() -> Engine {
    let engine = Engine::with_cache_config(threads_from_env(), cache_config_from_env());
    if let Some(path) = cost_profile_path_from_env() {
        if let Some(profile) = load_cost_profile(&path) {
            engine.cache().preload_cost_profile(&profile);
        }
        engine.set_drop_hook(move |cache| save_cost_profile(cache, &path));
    }
    engine
}

/// The cost-profile persistence path, from `CVCP_CACHE_COST_PROFILE`
/// (unset or empty: no persistence).
pub fn cost_profile_path_from_env() -> Option<PathBuf> {
    std::env::var("CVCP_CACHE_COST_PROFILE")
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// The startup cache-warmup replica list from `CVCP_CACHE_WARMUP`: a
/// comma-separated list of replica names as understood by
/// [`cvcp_data::replicas::replica_by_name`] (e.g.
/// `iris_like,wine_like,aloi:3`).  Unset or empty: no warmup.
pub fn warmup_replicas_from_env() -> Vec<String> {
    // cvcp: allow(D3, reason = "generic reader closure; the literal CVCP_CACHE_WARMUP name is passed in below and checked there")
    warmup_replicas_from(|var| std::env::var(var).ok())
}

/// [`warmup_replicas_from_env`] with the variable lookup injected (see
/// [`cache_config_from_env`] for why).
fn warmup_replicas_from(lookup: impl Fn(&str) -> Option<String>) -> Vec<String> {
    lookup("CVCP_CACHE_WARMUP")
        .map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|name| !name.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

/// Runs the startup cache warmup for the named data-set replicas on the
/// paper's method families (resolved deterministically with [`BASE_SEED`],
/// so the warmed artifacts fingerprint-match the ones `serve` requests for
/// those replicas will look up).  Unknown names are reported on stderr and
/// skipped; `None` when no name resolves.  Warmup only populates the
/// cache — it can never change any selection result.
pub fn run_cache_warmup(engine: &Engine, replicas: &[String]) -> Option<WarmupReport> {
    let mut warmup = CacheWarmup::new()
        .add_method(Arc::new(FoscMethod::default()))
        .add_method(Arc::new(MpckMethod::default()));
    let mut any = false;
    for name in replicas {
        match cvcp_data::replicas::replica_by_name(name, BASE_SEED) {
            Some(ds) => {
                warmup = warmup.add_dataset(&ds);
                any = true;
            }
            None => eprintln!("warning: unknown warmup replica {name:?} (skipped)"),
        }
    }
    any.then(|| warmup.run(engine))
}

/// Serialises a [`CostProfile`] to its JSON document:
/// `{"cost_profile":[{"kind":…,"ewma_nanos":…,"samples":…},…]}`.
pub fn cost_profile_to_json(profile: &CostProfile) -> Json {
    Json::obj([(
        "cost_profile",
        Json::Arr(
            profile
                .entries
                .iter()
                .map(|e| {
                    Json::obj([
                        ("kind", e.kind.to_json()),
                        ("ewma_nanos", e.ewma_nanos.to_json()),
                        ("samples", e.samples.to_json()),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Parses a [`CostProfile`] from its JSON document.  Entries with unknown
/// kind names are dropped (they could come from a newer build);
/// structurally broken entries make the whole parse fail.
pub fn cost_profile_from_json(doc: &Json) -> Option<CostProfile> {
    let entries = doc.get("cost_profile")?.as_arr()?;
    let mut profile = CostProfile::default();
    for entry in entries {
        let kind_name = entry.get("kind")?.as_str()?;
        let ewma_nanos = entry.get("ewma_nanos")?.as_f64()?;
        let samples = entry.get("samples")?.as_u64()?;
        // Kind names are interned against the engine's canonical list;
        // names this build does not know are skipped, not fatal.
        if let Some(&kind) = cvcp_engine::ArtifactKey::KIND_NAMES
            .iter()
            .find(|&&k| k == kind_name)
        {
            profile.entries.push(CostProfileEntry {
                kind,
                ewma_nanos,
                samples,
            });
        }
    }
    Some(profile)
}

/// Loads a persisted cost profile; `None` when the file is missing or
/// unparsable (a cold start simply begins with an empty profile).
pub fn load_cost_profile(path: &Path) -> Option<CostProfile> {
    let text = std::fs::read_to_string(path).ok()?;
    cost_profile_from_json(&Json::parse(&text).ok()?)
}

/// Dumps the cache's current cost profile to `path` (pretty JSON).
/// Failures are reported on stderr but never fatal — profile persistence
/// is an optimisation, not a correctness requirement.
pub fn save_cost_profile(cache: &ArtifactCache, path: &Path) {
    let json = cost_profile_to_json(&cache.cost_profile()).pretty();
    if let Err(e) = std::fs::write(path, json) {
        eprintln!(
            "warning: could not persist the cache cost profile to {}: {e}",
            path.display()
        );
    }
}

/// The process-wide execution engine: every experiment binary multiplexes
/// all of its trials over this one pool and shares one artifact cache
/// (distance matrices, density hierarchies and MPCKMeans seedings are
/// reused across tables, figures and side-information levels of the same
/// data sets).  The configuration comes from [`engine_from_env`].
pub fn shared_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(engine_from_env)
}

/// Prints the shared engine's cache statistics (hit rate, residency and
/// eviction counters) — called by the binaries after their last experiment.
pub fn print_cache_stats() {
    let stats = shared_engine().cache_stats();
    println!(
        "\n[artifact cache] {} shard(s) | hit rate {:.1}% ({} hits / {} misses) | \
         resident {} artifacts, {:.1} MiB (peak {:.1} MiB) | evicted {} artifacts, {:.1} MiB",
        stats.shards,
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.misses,
        stats.resident_entries,
        stats.resident_bytes as f64 / (1024.0 * 1024.0),
        stats.peak_resident_bytes as f64 / (1024.0 * 1024.0),
        stats.evictions,
        stats.evicted_bytes as f64 / (1024.0 * 1024.0),
    );
}

/// Runs one experiment cell on the shared engine.
pub fn run_experiment(
    method: &dyn ParameterizedMethod,
    dataset: &Dataset,
    spec: SideInfoSpec,
    config: &ExperimentConfig,
) -> Vec<cvcp_core::experiment::TrialOutcome> {
    let outcomes = run_experiment_on(shared_engine(), method, dataset, spec, config);
    // The shared engine is a never-dropped static, so the drop hook
    // installed by `engine_from_env` cannot fire for the experiment
    // binaries — persist the learned cost profile after every experiment
    // cell instead (a tiny JSON write next to seconds of evaluation, and
    // crash-safe for long table runs).
    if let Some(path) = cost_profile_path_from_env() {
        save_cost_profile(shared_engine().cache(), &path);
    }
    outcomes
}

/// The evaluation corpus: the five UCI-style replicas (the ALOI collection is
/// handled separately because it is a *collection* of data sets).
pub fn uci_corpus() -> Vec<Dataset> {
    cvcp_data::replicas::uci_corpus(BASE_SEED)
}

/// The ALOI-like collection for the current mode.
pub fn aloi_collection(mode: Mode) -> Vec<Dataset> {
    cvcp_data::aloi::aloi_k5_collection_of_size(BASE_SEED, mode.aloi_collection_size())
}

/// One representative ALOI-like data set (used for the curve figures 5–8).
pub fn representative_aloi() -> Dataset {
    cvcp_data::aloi::aloi_k5_dataset(BASE_SEED, 0)
}

/// The MPCKMeans `k` range for a data set (2..=min(2·classes, 10), as in the
/// paper's figures).
pub fn k_range(dataset: &Dataset) -> Vec<usize> {
    MpckMethod::default().default_parameter_range(dataset.n_classes())
}

/// Returns the method/parameter-range pair for the two algorithms.
pub fn fosc_method() -> FoscMethod {
    FoscMethod::default()
}

/// MPCKMeans with the defaults used throughout the experiments.
pub fn mpck_method() -> MpckMethod {
    MpckMethod::default()
}

/// The output directory for machine-readable results.
pub fn output_dir() -> PathBuf {
    let dir = PathBuf::from("target").join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Writes a serialisable result as pretty JSON under `target/experiments/`.
pub fn write_json<T: ToJson>(name: &str, value: &T) {
    let path = output_dir().join(format!("{name}.json"));
    let json = value.to_json().pretty();
    std::fs::write(&path, json).expect("write result file");
    println!("\n[written {}]", path.display());
}

// ---------------------------------------------------------------------------
// Correlation tables (Tables 1–4)
// ---------------------------------------------------------------------------

/// One row of a correlation table: the correlation per data set for one
/// side-information level.
#[derive(Debug, Clone)]
pub struct CorrelationRow {
    /// Side-information label (e.g. `labels-10%`).
    pub setting: String,
    /// Per-data-set mean correlation, keyed by data set name.
    pub correlations: Vec<(String, f64)>,
}

impl ToJson for CorrelationRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("setting", self.setting.to_json()),
            ("correlations", self.correlations.to_json()),
        ])
    }
}

/// Computes a full correlation table (one row per side-information level,
/// one column per data set, ALOI averaged over the collection).
pub fn correlation_table(
    method: &dyn ParameterizedMethod,
    params: Option<Vec<usize>>,
    specs: &[SideInfoSpec],
    mode: Mode,
    with_silhouette: bool,
) -> Vec<CorrelationRow> {
    let aloi = aloi_collection(mode);
    let corpus = uci_corpus();
    let mut rows = Vec::new();
    for &spec in specs {
        let mut correlations = Vec::new();

        // ALOI column: mean over the collection.
        let mut aloi_corrs = Vec::new();
        for ds in &aloi {
            let cfg = mode.config(
                params.clone().unwrap_or_else(|| default_params(method, ds)),
                with_silhouette,
            );
            let outcomes = run_experiment(method, ds, spec, &cfg);
            aloi_corrs.push(mean(
                &outcomes.iter().map(|o| o.correlation).collect::<Vec<_>>(),
            ));
        }
        correlations.push(("ALOI".to_string(), mean(&aloi_corrs)));

        // UCI-style columns.
        for ds in &corpus {
            let cfg = mode.config(
                params.clone().unwrap_or_else(|| default_params(method, ds)),
                with_silhouette,
            );
            let outcomes = run_experiment(method, ds, spec, &cfg);
            let corr = mean(&outcomes.iter().map(|o| o.correlation).collect::<Vec<_>>());
            correlations.push((ds.name().to_string(), corr));
        }
        rows.push(CorrelationRow {
            setting: spec.label(),
            correlations,
        });
    }
    rows
}

/// Prints a correlation table in the paper's layout (settings as rows, data
/// sets as columns).
pub fn print_correlation_table(title: &str, rows: &[CorrelationRow]) {
    println!("\n{title}");
    if rows.is_empty() {
        return;
    }
    print!("{:<16}", "setting");
    for (name, _) in &rows[0].correlations {
        print!(" {name:>16}");
    }
    println!();
    for row in rows {
        print!("{:<16}", row.setting);
        for (_, corr) in &row.correlations {
            print!(" {corr:>16.4}");
        }
        println!();
    }
}

// ---------------------------------------------------------------------------
// Performance tables (Tables 5–16)
// ---------------------------------------------------------------------------

/// A performance table: one summary per data set for one side-information
/// level (ALOI summarised over the collection).
#[derive(Debug, Clone)]
pub struct PerformanceTable {
    /// Table caption.
    pub title: String,
    /// Side-information label.
    pub setting: String,
    /// Per-data-set summaries (ALOI is an aggregate over the collection).
    pub summaries: Vec<ExperimentSummary>,
    /// For the ALOI collection: how many of its data sets showed a
    /// statistically significant difference (the paper reports e.g. "89/100
    /// in ALOI were significant").
    pub aloi_significant: usize,
    /// Number of ALOI data sets evaluated.
    pub aloi_total: usize,
}

impl ToJson for PerformanceTable {
    fn to_json(&self) -> Json {
        Json::obj([
            ("title", self.title.to_json()),
            ("setting", self.setting.to_json()),
            ("summaries", self.summaries.to_json()),
            ("aloi_significant", self.aloi_significant.to_json()),
            ("aloi_total", self.aloi_total.to_json()),
        ])
    }
}

fn default_params(method: &dyn ParameterizedMethod, ds: &Dataset) -> Vec<usize> {
    method.default_parameter_range(ds.n_classes())
}

/// Runs one performance table: every data set (ALOI collection + UCI corpus)
/// for one side-information specification.
pub fn performance_table(
    title: &str,
    method: &dyn ParameterizedMethod,
    params: Option<Vec<usize>>,
    spec: SideInfoSpec,
    mode: Mode,
    with_silhouette: bool,
) -> PerformanceTable {
    let aloi = aloi_collection(mode);
    let corpus = uci_corpus();

    // ALOI: run per data set, aggregate the trial values, count significance.
    let mut aloi_cvcp = Vec::new();
    let mut aloi_expected = Vec::new();
    let mut aloi_sil = Vec::new();
    let mut aloi_significant = 0usize;
    let mut all_aloi_outcomes = Vec::new();
    for ds in &aloi {
        let cfg = mode.config(
            params.clone().unwrap_or_else(|| default_params(method, ds)),
            with_silhouette,
        );
        let outcomes = run_experiment(method, ds, spec, &cfg);
        let summary = summarize(ds.name(), &method.name(), spec, &outcomes);
        if summary.cvcp_beats_expected_significantly(0.05) {
            aloi_significant += 1;
        }
        aloi_cvcp.extend(summary.cvcp_values.iter().copied());
        aloi_expected.extend(summary.expected_values.iter().copied());
        aloi_sil.extend(summary.silhouette_values.iter().copied());
        all_aloi_outcomes.extend(outcomes);
    }
    let aloi_summary = {
        let mut s = summarize("ALOI", &method.name(), spec, &all_aloi_outcomes);
        // keep the aggregate raw values for the box plots
        s.cvcp_values = aloi_cvcp;
        s.expected_values = aloi_expected;
        s.silhouette_values = aloi_sil;
        s
    };

    let mut summaries = vec![aloi_summary];
    for ds in &corpus {
        let cfg = mode.config(
            params.clone().unwrap_or_else(|| default_params(method, ds)),
            with_silhouette,
        );
        let outcomes = run_experiment(method, ds, spec, &cfg);
        summaries.push(summarize(ds.name(), &method.name(), spec, &outcomes));
    }

    PerformanceTable {
        title: title.to_string(),
        setting: spec.label(),
        summaries,
        aloi_significant,
        aloi_total: aloi.len(),
    }
}

/// Prints a performance table in the paper's layout.
pub fn print_performance_table(table: &PerformanceTable, with_silhouette: bool) {
    println!("\n{} ({})", table.title, table.setting);
    println!(
        "  {}/{} ALOI data sets showed a significant CVCP-vs-Expected difference",
        table.aloi_significant, table.aloi_total
    );
    if with_silhouette {
        println!(
            "{:<18} {:>9} {:>9} {:>9}   {:>9} {:>9} {:>9}",
            "data set", "CVCP", "Exp", "Silh", "CVCP std", "Exp std", "Silh std"
        );
    } else {
        println!(
            "{:<18} {:>9} {:>9}   {:>9} {:>9}",
            "data set", "CVCP", "Expected", "CVCP std", "Exp std"
        );
    }
    for s in &table.summaries {
        let star = if s.cvcp_beats_expected_significantly(0.05) {
            "*"
        } else {
            " "
        };
        if with_silhouette {
            let (sm, ss) = s
                .silhouette
                .as_ref()
                .map_or((f64::NAN, f64::NAN), |x| (x.mean, x.std));
            println!(
                "{:<18} {:>8.4}{star} {:>9.4} {:>9.4}   {:>9.4} {:>9.4} {:>9.4}",
                s.dataset, s.cvcp.mean, s.expected.mean, sm, s.cvcp.std, s.expected.std, ss
            );
        } else {
            println!(
                "{:<18} {:>8.4}{star} {:>9.4}   {:>9.4} {:>9.4}",
                s.dataset, s.cvcp.mean, s.expected.mean, s.cvcp.std, s.expected.std
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Curve figures (Figures 5–8)
// ---------------------------------------------------------------------------

/// The two series of a parameter-vs-quality curve figure.
#[derive(Debug, Clone)]
pub struct CurveFigure {
    /// Figure caption.
    pub title: String,
    /// Parameter name (`MinPts` or `k`).
    pub parameter: String,
    /// Parameter values.
    pub params: Vec<usize>,
    /// Internal CVCP classification scores.
    pub internal: Vec<f64>,
    /// External clustering scores (Overall F-measure).
    pub external: Vec<f64>,
    /// Pearson correlation between the two series.
    pub correlation: f64,
}

impl ToJson for CurveFigure {
    fn to_json(&self) -> Json {
        Json::obj([
            ("title", self.title.to_json()),
            ("parameter", self.parameter.to_json()),
            ("params", self.params.to_json()),
            ("internal", self.internal.to_json()),
            ("external", self.external.to_json()),
            ("correlation", self.correlation.to_json()),
        ])
    }
}

/// Generates a curve figure: one representative run on one ALOI-like data
/// set, as in Figures 5–8.
pub fn curve_figure(
    title: &str,
    method: &dyn ParameterizedMethod,
    params: &[usize],
    spec: SideInfoSpec,
    mode: Mode,
) -> CurveFigure {
    let ds = representative_aloi();
    let cfg = mode.config(params.to_vec(), false);
    let outcome = cvcp_core::experiment::run_trial(method, &ds, spec, &cfg, params, 0);
    CurveFigure {
        title: title.to_string(),
        parameter: method.parameter_name(),
        params: params.to_vec(),
        internal: outcome.internal_scores.clone(),
        external: outcome.external_scores.clone(),
        correlation: outcome.correlation,
    }
}

/// Prints a curve figure as an aligned table plus the correlation.
pub fn print_curve_figure(fig: &CurveFigure) {
    println!("\n{}", fig.title);
    println!(
        "{}",
        cvcp_core::report::curve_table(&fig.parameter, &fig.params, &fig.internal, &fig.external)
    );
    println!("correlation coefficient = {:.4}", fig.correlation);
}

// ---------------------------------------------------------------------------
// Box-plot figures (Figures 9–12)
// ---------------------------------------------------------------------------

/// The quality distributions behind one box-plot figure.
#[derive(Debug, Clone)]
pub struct BoxplotFigure {
    /// Figure caption.
    pub title: String,
    /// One entry per box: label and the raw quality values.
    pub groups: Vec<(String, Vec<f64>)>,
}

impl ToJson for BoxplotFigure {
    fn to_json(&self) -> Json {
        Json::obj([
            ("title", self.title.to_json()),
            ("groups", self.groups.to_json()),
        ])
    }
}

/// Generates a box-plot figure over the ALOI-like collection for the given
/// side-information levels.
pub fn boxplot_figure(
    title: &str,
    method: &dyn ParameterizedMethod,
    params: Option<Vec<usize>>,
    specs: &[(SideInfoSpec, &str)],
    mode: Mode,
    with_silhouette: bool,
) -> BoxplotFigure {
    let aloi = aloi_collection(mode);
    let mut groups = Vec::new();
    for &(spec, suffix) in specs {
        let mut cvcp_values = Vec::new();
        let mut expected_values = Vec::new();
        let mut sil_values = Vec::new();
        for ds in &aloi {
            let cfg = mode.config(
                params.clone().unwrap_or_else(|| default_params(method, ds)),
                with_silhouette,
            );
            let outcomes = run_experiment(method, ds, spec, &cfg);
            for o in &outcomes {
                cvcp_values.push(o.cvcp_external);
                expected_values.push(o.expected_external);
                if let Some(s) = o.silhouette_external {
                    sil_values.push(s);
                }
            }
        }
        groups.push((format!("CVCP-{suffix}"), cvcp_values));
        groups.push((format!("Exp-{suffix}"), expected_values));
        if with_silhouette {
            groups.push((format!("Sil-{suffix}"), sil_values));
        }
    }
    BoxplotFigure {
        title: title.to_string(),
        groups,
    }
}

/// Prints a box-plot figure as one summary row per box.
pub fn print_boxplot_figure(fig: &BoxplotFigure) {
    println!("\n{}", fig.title);
    for (label, values) in &fig.groups {
        println!("{}", cvcp_core::report::boxplot_row(label, values));
        if !values.is_empty() {
            println!(
                "             mean={:.4} std={:.4}",
                mean(values),
                std_dev(values)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_defaults_are_quick() {
        let mode = Mode { full: false };
        assert_eq!(mode.n_trials(), 5);
        assert_eq!(mode.n_folds(), 5);
        assert_eq!(mode.aloi_collection_size(), 3);
        let full = Mode { full: true };
        assert_eq!(full.n_trials(), 50);
        assert_eq!(full.aloi_collection_size(), 100);
    }

    #[test]
    fn cache_env_knobs_feed_the_config() {
        // Exercised through the injected-lookup seam: mutating the real
        // process environment from a parallel test would race with other
        // tests (and `shared_engine()`) reading it.
        let env = |pairs: &'static [(&'static str, &'static str)]| {
            move |var: &str| {
                pairs
                    .iter()
                    .find(|(k, _)| *k == var)
                    .map(|(_, v)| v.to_string())
            }
        };
        let cfg = cache_config_from(env(&[
            ("CVCP_CACHE_SHARDS", "6"),
            ("CVCP_CACHE_POLICY", "cost"),
            ("CVCP_CACHE_ADMISSION", "cost"),
            ("CVCP_CACHE_REBALANCE_INTERVAL", "128"),
        ]));
        assert_eq!(cfg.shards, 6);
        assert_eq!(
            cfg.normalized_shards(),
            8,
            "shard count rounds up to a power of two"
        );
        assert_eq!(cfg.policy, cvcp_engine::EvictionPolicy::CostBenefit);
        assert_eq!(cfg.admission, AdmissionPolicy::Cost);
        assert_eq!(cfg.rebalance_interval, 128);
        // Defaults when unset: one shard, LRU, always-admit, unbounded.
        let cfg = cache_config_from(env(&[]));
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.policy, cvcp_engine::EvictionPolicy::Lru);
        assert_eq!(cfg.admission, AdmissionPolicy::Always);
        assert_eq!(
            cfg.rebalance_interval,
            cvcp_engine::DEFAULT_REBALANCE_INTERVAL
        );
        assert!(cfg.is_unbounded());
        // Unparsable values keep their defaults.
        let cfg = cache_config_from(env(&[
            ("CVCP_CACHE_SHARDS", "many"),
            ("CVCP_CACHE_POLICY", "clock"),
            ("CVCP_CACHE_ADMISSION", "sometimes"),
            ("CVCP_CACHE_REBALANCE_INTERVAL", "often"),
        ]));
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.policy, cvcp_engine::EvictionPolicy::Lru);
        assert_eq!(cfg.admission, AdmissionPolicy::Always);
        assert_eq!(
            cfg.rebalance_interval,
            cvcp_engine::DEFAULT_REBALANCE_INTERVAL
        );
        // `0` is a meaningful setting: rebalancing disabled.
        let cfg = cache_config_from(env(&[("CVCP_CACHE_REBALANCE_INTERVAL", "0")]));
        assert_eq!(cfg.rebalance_interval, 0);
    }

    #[test]
    fn warmup_replica_list_parses_and_warms_the_cache() {
        let names = warmup_replicas_from(|var| {
            (var == "CVCP_CACHE_WARMUP").then(|| " iris_like, ,aloi:1 ".to_string())
        });
        assert_eq!(names, vec!["iris_like".to_string(), "aloi:1".to_string()]);
        assert!(warmup_replicas_from(|_| None).is_empty());

        // Unknown names are skipped; known ones warm real artifacts.
        let engine = Engine::new(2);
        let report = run_cache_warmup(
            &engine,
            &["no_such_replica".to_string(), "iris_like".to_string()],
        )
        .expect("one replica resolves");
        assert!(report.jobs > 0);
        assert!(report.resident_entries > 0);
        assert!(run_cache_warmup(&engine, &["no_such_replica".to_string()]).is_none());
    }

    #[test]
    fn cost_profile_json_round_trips() {
        let profile = CostProfile {
            entries: vec![
                CostProfileEntry {
                    kind: "pairwise_distances",
                    ewma_nanos: 1.5e6,
                    samples: 12,
                },
                CostProfileEntry {
                    kind: "mpck_seeding",
                    ewma_nanos: 42.0,
                    samples: 1,
                },
            ],
        };
        let doc = cost_profile_to_json(&profile);
        assert_eq!(cost_profile_from_json(&doc), Some(profile.clone()));
        // …through the actual emit/parse cycle too.
        let reparsed = Json::parse(&doc.pretty()).expect("profile JSON parses");
        assert_eq!(cost_profile_from_json(&reparsed), Some(profile));
        // Unknown kinds are skipped, not fatal.
        let foreign = Json::parse(
            r#"{"cost_profile":[{"kind":"quantum_oracle","ewma_nanos":1,"samples":1}]}"#,
        )
        .unwrap();
        assert_eq!(
            cost_profile_from_json(&foreign),
            Some(CostProfile::default())
        );
        // Structurally broken documents fail as a whole.
        let broken = Json::parse(r#"{"cost_profile":[{"kind":"custom"}]}"#).unwrap();
        assert_eq!(cost_profile_from_json(&broken), None);
    }

    #[test]
    fn cost_profile_survives_a_save_load_cycle() {
        let cache = ArtifactCache::new();
        let _: std::sync::Arc<u64> = cache.get_or_compute(
            cvcp_engine::ArtifactKey::Custom { domain: 5, key: 5 },
            || {
                std::thread::sleep(std::time::Duration::from_millis(3));
                7
            },
        );
        let exported = cache.cost_profile();
        assert_eq!(exported.entries.len(), 1);

        let path = output_dir().join("cost_profile_roundtrip_test.json");
        save_cost_profile(&cache, &path);
        let loaded = load_cost_profile(&path).expect("saved profile loads");
        assert_eq!(loaded, exported);

        // A cold cache preloaded from the file reports the same profile.
        let cold = ArtifactCache::new();
        cold.preload_cost_profile(&loaded);
        assert_eq!(cold.cost_profile(), exported);
        let _ = std::fs::remove_file(&path);

        // Missing files are a clean cold start.
        assert_eq!(
            load_cost_profile(std::path::Path::new(
                "target/experiments/definitely_absent.json"
            )),
            None
        );
    }

    #[test]
    fn corpus_and_collection_shapes() {
        let corpus = uci_corpus();
        assert_eq!(corpus.len(), 5);
        let aloi = aloi_collection(Mode { full: false });
        assert_eq!(aloi.len(), 3);
        assert_eq!(representative_aloi().len(), 125);
    }

    #[test]
    fn k_range_respects_class_count() {
        let ds = representative_aloi();
        assert_eq!(k_range(&ds), (2..=10).collect::<Vec<_>>());
    }

    #[test]
    fn curve_figure_has_consistent_lengths() {
        let mode = Mode { full: false };
        let fig = curve_figure(
            "test figure",
            &mpck_method(),
            &[2, 3, 4],
            SideInfoSpec::LabelFraction(0.1),
            mode,
        );
        assert_eq!(fig.params.len(), 3);
        assert_eq!(fig.internal.len(), 3);
        assert_eq!(fig.external.len(), 3);
        assert!((-1.0..=1.0).contains(&fig.correlation));
    }
}
