//! Minimal JSON document model used to persist experiment results.
//!
//! The workspace builds in an offline container, so `serde`/`serde_json`
//! are not available; the experiment binaries only ever need to *emit*
//! JSON (never parse it), which this module covers in ~100 lines.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (non-finite values serialise as `null`, like serde_json).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pretty-prints with two-space indentation (matching `to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else if x.fract() == 0.0 && x.abs() < 9e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the JSON document model.
pub trait ToJson {
    /// Converts `self` into a [`Json`] value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_printing_matches_expected_shape() {
        let v = Json::obj([
            ("name", "aloi".to_json()),
            ("scores", vec![0.5, 1.0].to_json()),
            ("missing", Json::Null),
        ]);
        let s = v.pretty();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"name\": \"aloi\""));
        assert!(s.contains("\"missing\": null"));
        assert!(s.contains("0.5"));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(3.0).pretty(), "3");
        assert_eq!(Json::Num(0.25).pretty(), "0.25");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".to_string()).pretty(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }
}
