//! Tables 14–16: MPCKMeans, constraint scenario — average performance (CVCP
//! vs. expected vs. Silhouette) using 10, 20 and 50 % of the constraint pool.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{mpck_method, performance_table, print_performance_table, write_json, Mode};

fn main() {
    let mode = Mode::from_args();
    let settings = [("Table 14", 0.10), ("Table 15", 0.20), ("Table 16", 0.50)];
    let mut tables = Vec::new();
    for (title, sample_fraction) in settings {
        let spec = SideInfoSpec::ConstraintSample {
            pool_fraction: 0.10,
            sample_fraction,
        };
        let table = performance_table(
            &format!("{title}: MPCKMeans (constraint scenario) — average performance"),
            &mpck_method(),
            None,
            spec,
            mode,
            true,
        );
        print_performance_table(&table, true);
        tables.push(table);
    }
    write_json("table14_16_mpck_constraint_perf", &tables);
}
