//! Tables 11–13: FOSC-OPTICSDend, constraint scenario — average performance
//! (CVCP vs. the expected baseline) using 10, 20 and 50 % of the constraint
//! pool.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{
    fosc_method, performance_table, print_performance_table, write_json, Mode, MINPTS_RANGE,
};

fn main() {
    let mode = Mode::from_args();
    let settings = [("Table 11", 0.10), ("Table 12", 0.20), ("Table 13", 0.50)];
    let mut tables = Vec::new();
    for (title, sample_fraction) in settings {
        let spec = SideInfoSpec::ConstraintSample {
            pool_fraction: 0.10,
            sample_fraction,
        };
        let table = performance_table(
            &format!("{title}: FOSC-OPTICSDend (constraint scenario) — average performance"),
            &fosc_method(),
            Some(MINPTS_RANGE.to_vec()),
            spec,
            mode,
            false,
        );
        print_performance_table(&table, false);
        tables.push(table);
    }
    write_json("table11_13_fosc_constraint_perf", &tables);
}
