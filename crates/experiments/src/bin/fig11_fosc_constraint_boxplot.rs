//! Figure 11: FOSC-OPTICSDend, constraint scenario — distributions of the
//! Overall F-Measure over the ALOI-like collection for CVCP and the expected
//! baseline at 10 / 20 / 50 % of the constraint pool.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{
    boxplot_figure, fosc_method, print_boxplot_figure, write_json, Mode, MINPTS_RANGE,
};

fn main() {
    let mode = Mode::from_args();
    let specs: Vec<(SideInfoSpec, &str)> = vec![
        (
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: 0.10,
            },
            "10",
        ),
        (
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: 0.20,
            },
            "20",
        ),
        (
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: 0.50,
            },
            "50",
        ),
    ];
    let fig = boxplot_figure(
        "Figure 11: FOSC-OPTICSDend (constraint scenario) — ALOI collection quality distributions",
        &fosc_method(),
        Some(MINPTS_RANGE.to_vec()),
        &specs,
        mode,
        false,
    );
    print_boxplot_figure(&fig);
    write_json("fig11_fosc_constraint_boxplot", &fig);
}
