//! `profile_engine` — the timeline / critical-path profiler behind the
//! engine-scaling writeup in `EXPERIMENTS.md`.
//!
//! Runs the benchmark FOSC grid (the 125×144 ALOI-like replica, MinPts ∈
//! {3..24 step 3}, 8 stratified folds, 10% labels) as a **traced**
//! selection request at 1, 2, 4 and 8 engine workers, then:
//!
//! * asserts every run is bit-identical to the sequential reference
//!   (tracing must never change results);
//! * writes one Chrome `trace_event` file per worker count into
//!   `CVCP_TRACE_DIR` (default `target/trace/`) — load them in Perfetto
//!   or `about:tracing` to see the per-worker timeline;
//! * prints each run's [`GraphProfile`] (critical path vs. wall time,
//!   per-worker occupancy, steal ratio, queue waits) and writes the
//!   whole sweep as JSON under `target/experiments/profile_engine.json`.
//!
//! Of `RUNS` traced runs per worker count, the fastest is reported — the
//! slower ones serve as warm-up and noise rejection.

use cvcp_core::json::{Json, ToJson};
use cvcp_core::trace_export::{graph_profile_json, write_chrome_trace};
use cvcp_core::{
    run_selection_request_traced, Algorithm, Engine, GraphProfile, GraphTrace, SelectionRequest,
    SideInfoSpec,
};
use std::path::PathBuf;
use std::process::ExitCode;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const RUNS: usize = 3;

fn request(workers: usize) -> SelectionRequest {
    SelectionRequest {
        id: format!("fosc_grid_w{workers}"),
        dataset: "aloi:0".to_string(),
        algorithm: Algorithm::Fosc,
        params: cvcp_experiments::MINPTS_RANGE.to_vec(),
        side_info: SideInfoSpec::LabelFraction(0.1),
        n_folds: 8,
        stratified: true,
        seed: 1,
        priority: None,
        trace: true,
    }
}

fn trace_dir() -> PathBuf {
    std::env::var("CVCP_TRACE_DIR")
        .ok()
        .filter(|v| !v.trim().is_empty())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("trace"))
}

fn print_profile(profile: &GraphProfile) {
    println!(
        "\n[{}] {} workers | {} jobs ({} executed)",
        profile.name, profile.n_workers, profile.n_jobs, profile.n_executed
    );
    println!(
        "  wall {:.2} ms | busy {:.2} ms | critical path {:.2} ms ({} jobs deep)",
        profile.wall_ns as f64 / 1e6,
        profile.total_busy_ns as f64 / 1e6,
        profile.critical_path_ns as f64 / 1e6,
        profile.critical_path_jobs.len(),
    );
    println!(
        "  parallelism {:.2}x | schedule overhead {:.1}% | steal ratio {:.3} | \
         queue wait mean {:.3} ms / max {:.3} ms",
        profile.parallelism,
        profile.schedule_overhead * 100.0,
        profile.steal_ratio,
        profile.mean_queue_wait_ns() as f64 / 1e6,
        profile.max_queue_wait_ns as f64 / 1e6,
    );
    for w in &profile.workers {
        println!(
            "    worker {}: {} tasks, busy {:.2} ms, occupancy {:.1}%",
            w.worker,
            w.tasks,
            w.busy_ns as f64 / 1e6,
            w.occupancy * 100.0,
        );
    }
}

fn main() -> ExitCode {
    let dir = trace_dir();
    let reference = {
        let engine = Engine::sequential();
        match run_selection_request_traced(&engine, &request(1), None, |_| {}) {
            Ok((selection, _)) => selection,
            Err(e) => {
                eprintln!("profile_engine: reference run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!(
        "profile_engine: FOSC grid, {} params x 8 folds; best of {RUNS} traced runs per \
         worker count; traces under {}",
        cvcp_experiments::MINPTS_RANGE.len(),
        dir.display(),
    );

    let mut sweep: Vec<(usize, Json)> = Vec::new();
    for &workers in &WORKER_COUNTS {
        let mut best: Option<GraphTrace> = None;
        for _ in 0..RUNS {
            let engine = Engine::with_exact_threads(workers);
            let (selection, trace) =
                match run_selection_request_traced(&engine, &request(workers), None, |_| {}) {
                    Ok(done) => done,
                    Err(e) => {
                        eprintln!("profile_engine: {workers}-worker run failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            assert_eq!(
                selection, reference,
                "traced {workers}-worker selection diverged from the sequential reference"
            );
            let trace = trace.expect("traced request returns a trace");
            if best.as_ref().is_none_or(|b| trace.wall_ns < b.wall_ns) {
                best = Some(trace);
            }
        }
        let trace = best.expect("at least one run");
        match write_chrome_trace(&trace, &dir) {
            Ok(path) => println!("trace written: {}", path.display()),
            Err(e) => {
                eprintln!(
                    "profile_engine: cannot write trace under {}: {e}",
                    dir.display()
                );
                return ExitCode::FAILURE;
            }
        }
        let profile = GraphProfile::from_trace(&trace);
        print_profile(&profile);
        sweep.push((workers, graph_profile_json(&profile)));
    }

    let doc = Json::obj([
        ("dataset", "aloi:0".to_json()),
        ("params", cvcp_experiments::MINPTS_RANGE.to_vec().to_json()),
        ("n_folds", 8usize.to_json()),
        ("runs_per_worker_count", RUNS.to_json()),
        (
            "profiles",
            Json::Arr(sweep.into_iter().map(|(_, p)| p).collect()),
        ),
    ]);
    cvcp_experiments::write_json("profile_engine", &doc);
    ExitCode::SUCCESS
}
