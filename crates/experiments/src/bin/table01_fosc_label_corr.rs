//! Table 1: FOSC-OPTICSDend, label scenario — correlation of the internal
//! CVCP scores with the Overall F-Measure across the MinPts range, for all
//! data sets and 5 / 10 / 20 % labelled objects.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{
    correlation_table, fosc_method, print_correlation_table, write_json, Mode, MINPTS_RANGE,
};

fn main() {
    let mode = Mode::from_args();
    let rows = correlation_table(
        &fosc_method(),
        Some(MINPTS_RANGE.to_vec()),
        &[
            SideInfoSpec::LabelFraction(0.05),
            SideInfoSpec::LabelFraction(0.10),
            SideInfoSpec::LabelFraction(0.20),
        ],
        mode,
        false,
    );
    print_correlation_table(
        "Table 1: FOSC-OPTICSDend (label scenario) — correlation of internal scores with Overall F-Measure",
        &rows,
    );
    write_json("table01_fosc_label_corr", &rows);
}
