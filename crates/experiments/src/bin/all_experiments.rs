//! Runs the complete reproduction: every figure and table of the paper, in
//! order.  Pass `--full` for the paper-scale protocol (50 trials, 100 ALOI
//! data sets, 10 folds) — expect a long runtime; the default quick mode
//! reproduces the qualitative shape in minutes.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::*;

fn main() {
    let mode = Mode::from_args();
    println!(
        "CVCP reproduction — {} mode ({} trials, {} ALOI data sets, {} folds)",
        if mode.full { "FULL" } else { "QUICK" },
        mode.n_trials(),
        mode.aloi_collection_size(),
        mode.n_folds()
    );

    // Figures 5–8: parameter curves on a representative ALOI data set.
    let figures = [
        ("Figure 5", true, true),
        ("Figure 6", false, true),
        ("Figure 7", true, false),
        ("Figure 8", false, false),
    ];
    for (title, is_fosc, is_label) in figures {
        let spec = if is_label {
            SideInfoSpec::LabelFraction(0.10)
        } else {
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: 0.10,
            }
        };
        let fig = if is_fosc {
            curve_figure(title, &fosc_method(), &MINPTS_RANGE, spec, mode)
        } else {
            let params = k_range(&representative_aloi());
            curve_figure(title, &mpck_method(), &params, spec, mode)
        };
        print_curve_figure(&fig);
    }

    // Tables 1–4: correlation tables.
    let label_specs = [
        SideInfoSpec::LabelFraction(0.05),
        SideInfoSpec::LabelFraction(0.10),
        SideInfoSpec::LabelFraction(0.20),
    ];
    let constraint_specs: Vec<SideInfoSpec> = [0.10, 0.20, 0.50]
        .iter()
        .map(|&sample_fraction| SideInfoSpec::ConstraintSample {
            pool_fraction: 0.10,
            sample_fraction,
        })
        .collect();
    print_correlation_table(
        "Table 1: FOSC-OPTICSDend (label scenario) — correlations",
        &correlation_table(
            &fosc_method(),
            Some(MINPTS_RANGE.to_vec()),
            &label_specs,
            mode,
            false,
        ),
    );
    print_correlation_table(
        "Table 2: MPCKMeans (label scenario) — correlations",
        &correlation_table(&mpck_method(), None, &label_specs, mode, false),
    );
    print_correlation_table(
        "Table 3: FOSC-OPTICSDend (constraint scenario) — correlations",
        &correlation_table(
            &fosc_method(),
            Some(MINPTS_RANGE.to_vec()),
            &constraint_specs,
            mode,
            false,
        ),
    );
    print_correlation_table(
        "Table 4: MPCKMeans (constraint scenario) — correlations",
        &correlation_table(&mpck_method(), None, &constraint_specs, mode, false),
    );

    // Tables 5–16: performance tables.
    for (title, frac) in [("Table 5", 0.05), ("Table 6", 0.10), ("Table 7", 0.20)] {
        let t = performance_table(
            &format!("{title}: FOSC-OPTICSDend (label scenario)"),
            &fosc_method(),
            Some(MINPTS_RANGE.to_vec()),
            SideInfoSpec::LabelFraction(frac),
            mode,
            false,
        );
        print_performance_table(&t, false);
    }
    for (title, frac) in [("Table 8", 0.05), ("Table 9", 0.10), ("Table 10", 0.20)] {
        let t = performance_table(
            &format!("{title}: MPCKMeans (label scenario)"),
            &mpck_method(),
            None,
            SideInfoSpec::LabelFraction(frac),
            mode,
            true,
        );
        print_performance_table(&t, true);
    }
    for (title, frac) in [("Table 11", 0.10), ("Table 12", 0.20), ("Table 13", 0.50)] {
        let t = performance_table(
            &format!("{title}: FOSC-OPTICSDend (constraint scenario)"),
            &fosc_method(),
            Some(MINPTS_RANGE.to_vec()),
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: frac,
            },
            mode,
            false,
        );
        print_performance_table(&t, false);
    }
    for (title, frac) in [("Table 14", 0.10), ("Table 15", 0.20), ("Table 16", 0.50)] {
        let t = performance_table(
            &format!("{title}: MPCKMeans (constraint scenario)"),
            &mpck_method(),
            None,
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: frac,
            },
            mode,
            true,
        );
        print_performance_table(&t, true);
    }

    // Figures 9–12: box plots over the ALOI collection.
    let label_boxes = [
        (SideInfoSpec::LabelFraction(0.05), "5"),
        (SideInfoSpec::LabelFraction(0.10), "10"),
        (SideInfoSpec::LabelFraction(0.20), "20"),
    ];
    let constraint_boxes = [
        (
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: 0.10,
            },
            "10",
        ),
        (
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: 0.20,
            },
            "20",
        ),
        (
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: 0.50,
            },
            "50",
        ),
    ];
    print_boxplot_figure(&boxplot_figure(
        "Figure 9: FOSC-OPTICSDend (label scenario)",
        &fosc_method(),
        Some(MINPTS_RANGE.to_vec()),
        &label_boxes,
        mode,
        false,
    ));
    print_boxplot_figure(&boxplot_figure(
        "Figure 10: MPCKMeans (label scenario)",
        &mpck_method(),
        None,
        &label_boxes,
        mode,
        true,
    ));
    print_boxplot_figure(&boxplot_figure(
        "Figure 11: FOSC-OPTICSDend (constraint scenario)",
        &fosc_method(),
        Some(MINPTS_RANGE.to_vec()),
        &constraint_boxes,
        mode,
        false,
    ));
    print_boxplot_figure(&boxplot_figure(
        "Figure 12: MPCKMeans (constraint scenario)",
        &mpck_method(),
        None,
        &constraint_boxes,
        mode,
        true,
    ));

    print_cache_stats();
}
