//! Figure 9: FOSC-OPTICSDend, label scenario — distributions of the Overall
//! F-Measure over the ALOI-like collection for CVCP and the expected
//! baseline at 5 / 10 / 20 % labelled objects.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{
    boxplot_figure, fosc_method, print_boxplot_figure, write_json, Mode, MINPTS_RANGE,
};

fn main() {
    let mode = Mode::from_args();
    let fig = boxplot_figure(
        "Figure 9: FOSC-OPTICSDend (label scenario) — ALOI collection quality distributions",
        &fosc_method(),
        Some(MINPTS_RANGE.to_vec()),
        &[
            (SideInfoSpec::LabelFraction(0.05), "5"),
            (SideInfoSpec::LabelFraction(0.10), "10"),
            (SideInfoSpec::LabelFraction(0.20), "20"),
        ],
        mode,
        false,
    );
    print_boxplot_figure(&fig);
    write_json("fig09_fosc_label_boxplot", &fig);
}
