//! Figure 8: MPCKMeans, constraint scenario — internal CVCP scores vs.
//! clustering scores over k on a representative ALOI-like data set
//! (10 % of the constraint pool).

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{
    curve_figure, k_range, mpck_method, print_curve_figure, representative_aloi, write_json, Mode,
};

fn main() {
    let mode = Mode::from_args();
    let params = k_range(&representative_aloi());
    let fig = curve_figure(
        "Figure 8: MPCKMeans (constraint scenario) — representative ALOI data set, 10% of pool",
        &mpck_method(),
        &params,
        SideInfoSpec::ConstraintSample {
            pool_fraction: 0.10,
            sample_fraction: 0.10,
        },
        mode,
    );
    print_curve_figure(&fig);
    write_json("fig08_mpck_constraint_curve", &fig);
}
