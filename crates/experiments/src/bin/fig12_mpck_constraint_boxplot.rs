//! Figure 12: MPCKMeans, constraint scenario — distributions of the Overall
//! F-Measure over the ALOI-like collection for CVCP, the expected baseline
//! and Silhouette-based selection at 10 / 20 / 50 % of the constraint pool.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{boxplot_figure, mpck_method, print_boxplot_figure, write_json, Mode};

fn main() {
    let mode = Mode::from_args();
    let specs: Vec<(SideInfoSpec, &str)> = vec![
        (
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: 0.10,
            },
            "10",
        ),
        (
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: 0.20,
            },
            "20",
        ),
        (
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.10,
                sample_fraction: 0.50,
            },
            "50",
        ),
    ];
    let fig = boxplot_figure(
        "Figure 12: MPCKMeans (constraint scenario) — ALOI collection quality distributions",
        &mpck_method(),
        None,
        &specs,
        mode,
        true,
    );
    print_boxplot_figure(&fig);
    write_json("fig12_mpck_constraint_boxplot", &fig);
}
