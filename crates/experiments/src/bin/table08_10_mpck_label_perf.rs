//! Tables 8–10: MPCKMeans, label scenario — average performance (CVCP vs.
//! expected vs. Silhouette) using 5, 10 and 20 % labelled objects.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{mpck_method, performance_table, print_performance_table, write_json, Mode};

fn main() {
    let mode = Mode::from_args();
    let settings = [
        ("Table 8", SideInfoSpec::LabelFraction(0.05)),
        ("Table 9", SideInfoSpec::LabelFraction(0.10)),
        ("Table 10", SideInfoSpec::LabelFraction(0.20)),
    ];
    let mut tables = Vec::new();
    for (title, spec) in settings {
        let table = performance_table(
            &format!("{title}: MPCKMeans (label scenario) — average performance"),
            &mpck_method(),
            None,
            spec,
            mode,
            true,
        );
        print_performance_table(&table, true);
        tables.push(table);
    }
    write_json("table08_10_mpck_label_perf", &tables);
}
