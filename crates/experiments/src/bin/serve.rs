//! `serve` — the CVCP model-selection server.
//!
//! Binds `CVCP_ADDR` (default `127.0.0.1:7878`) and serves newline-
//! delimited JSON selection requests over one shared, cache-bounded
//! engine, configured through the same environment knobs as the
//! experiment binaries:
//!
//! * `CVCP_THREADS` — engine worker threads (default: hardware);
//! * `CVCP_CACHE_MAX_MB` / `CVCP_CACHE_MAX_ENTRIES` — artifact-cache
//!   budget (default: unbounded);
//! * `CVCP_CACHE_COST_PROFILE` — path for persisting the per-artifact-kind
//!   compute-time EWMAs across restarts (reloaded at startup, dumped on
//!   shutdown), so a cold serve starts with learned cost-benefit weights;
//! * `CVCP_CACHE_ADMISSION` — cache admission policy: `always` (default)
//!   or `cost` (artifacts cheaper to recompute than to store are not
//!   cached);
//! * `CVCP_CACHE_WARMUP` — comma-separated data-set replica names (e.g.
//!   `iris_like,aloi:0`) whose highest-benefit artifacts are precomputed
//!   into the cache before the server accepts traffic;
//! * `CVCP_ADDR` — listen address;
//! * `CVCP_QUEUE_DEPTH` — request queue capacity (default 32);
//! * `CVCP_SERVER_WORKERS` — concurrent selection workers (default 2);
//! * `CVCP_DEFAULT_PRIORITY` — scheduling lane for requests without an
//!   explicit `"priority"` field: `interactive` (default) or `batch`;
//! * `CVCP_MAX_CONNECTIONS` — open-connection cap; connections beyond it
//!   are refused with `server_busy` (default 1024);
//! * `CVCP_MAX_IN_FLIGHT` — per-connection pipelining cap for v2
//!   connections, advertised in the `hello_ack` (default 32);
//! * `CVCP_TRACE_DIR` — when set, every served selection runs traced and
//!   its Chrome `trace_event` file (`<request-id>.trace.json`, loadable
//!   in Perfetto / `about:tracing`) is written into that directory.
//!
//! Connections are served by a single readiness event loop: clients that
//! open with `{"hello":{"version":2}}` get a persistent, pipelined
//! connection (responses correlated by request id); clients that send a
//! bare request speak the original one-request-per-connection v1.
//!
//! Drive it with the `cvcp-client` example of `cvcp-server`, e.g.:
//!
//! ```text
//! cargo run --release -p cvcp-experiments --bin serve &
//! cargo run --release -p cvcp-server --example cvcp-client -- \
//!     --mode select --algorithm fosc --dataset aloi:0 --params 3,6,9
//! ```
//!
//! The process runs until a client sends `{"type":"shutdown"}`.

use cvcp_experiments::{
    cost_profile_path_from_env, engine_from_env, run_cache_warmup, save_cost_profile,
    warmup_replicas_from_env,
};
use cvcp_server::{Server, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let engine = Arc::new(engine_from_env());
    // Warm the cache *before* binding: the first request a client can
    // reach already sees the precomputed artifacts.
    let warmup_replicas = warmup_replicas_from_env();
    if !warmup_replicas.is_empty() {
        match run_cache_warmup(&engine, &warmup_replicas) {
            Some(report) => println!(
                "cache warmup: {} jobs over {} plan cell(s); {} artifacts ({:.1} MiB) resident",
                report.jobs,
                report.entries.len(),
                report.resident_entries,
                report.resident_bytes as f64 / (1024.0 * 1024.0),
            ),
            None => eprintln!("cache warmup: no known replicas in CVCP_CACHE_WARMUP"),
        }
    }
    let config = ServerConfig::from_env();
    let server = match Server::start(&config, Arc::clone(&engine)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cvcp-server listening on {} ({} engine threads, {} workers, queue depth {}, \
         default priority {})",
        server.local_addr(),
        engine.n_threads(),
        config.workers,
        config.queue_depth,
        config.default_priority.name(),
    );
    println!(
        "protocol: v1 (one-shot) and v2 (pipelined); up to {} connections, \
         {} in-flight requests per v2 connection",
        config.max_connections, config.max_in_flight,
    );
    let cache = engine.cache().config();
    match (cache.max_bytes, cache.max_entries) {
        (None, None) => println!("artifact cache: unbounded"),
        (bytes, entries) => println!(
            "artifact cache: max_bytes={} max_entries={}",
            bytes.map_or("-".to_string(), |b| format!("{}MiB", b / (1024 * 1024))),
            entries.map_or("-".to_string(), |e| e.to_string()),
        ),
    }
    if let Some(path) = cost_profile_path_from_env() {
        println!("cost profile: persisted at {}", path.display());
    }
    if let Some(dir) = &config.trace_dir {
        println!(
            "tracing: every selection traced, files under {}",
            dir.display()
        );
    }
    server.wait();
    // Persist the learned cost profile eagerly: the engine's drop hook
    // (installed by `engine_from_env`) covers the normal teardown, but
    // detached connection threads may still hold an engine reference at
    // process exit — the explicit save makes shutdown persistence
    // unconditional (writing the same profile twice is harmless).
    if let Some(path) = cost_profile_path_from_env() {
        save_cost_profile(engine.cache(), &path);
    }
    println!("cvcp-server shut down");
    ExitCode::SUCCESS
}
