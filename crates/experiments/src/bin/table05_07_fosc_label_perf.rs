//! Tables 5–7: FOSC-OPTICSDend, label scenario — average performance (CVCP
//! vs. the expected baseline) using 5, 10 and 20 % labelled objects.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{
    fosc_method, performance_table, print_performance_table, write_json, Mode, MINPTS_RANGE,
};

fn main() {
    let mode = Mode::from_args();
    let settings = [
        ("Table 5", SideInfoSpec::LabelFraction(0.05)),
        ("Table 6", SideInfoSpec::LabelFraction(0.10)),
        ("Table 7", SideInfoSpec::LabelFraction(0.20)),
    ];
    let mut tables = Vec::new();
    for (title, spec) in settings {
        let table = performance_table(
            &format!("{title}: FOSC-OPTICSDend (label scenario) — average performance"),
            &fosc_method(),
            Some(MINPTS_RANGE.to_vec()),
            spec,
            mode,
            false,
        );
        print_performance_table(&table, false);
        tables.push(table);
    }
    write_json("table05_07_fosc_label_perf", &tables);
}
