//! Table 3: FOSC-OPTICSDend, constraint scenario — correlation of the
//! internal CVCP scores with the Overall F-Measure, for all data sets and
//! 10 / 20 / 50 % of the constraint pool.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{
    correlation_table, fosc_method, print_correlation_table, write_json, Mode, MINPTS_RANGE,
};

fn main() {
    let mode = Mode::from_args();
    let specs: Vec<SideInfoSpec> = [0.10, 0.20, 0.50]
        .iter()
        .map(|&sample_fraction| SideInfoSpec::ConstraintSample {
            pool_fraction: 0.10,
            sample_fraction,
        })
        .collect();
    let rows = correlation_table(
        &fosc_method(),
        Some(MINPTS_RANGE.to_vec()),
        &specs,
        mode,
        false,
    );
    print_correlation_table(
        "Table 3: FOSC-OPTICSDend (constraint scenario) — correlation of internal scores with Overall F-Measure",
        &rows,
    );
    write_json("table03_fosc_constraint_corr", &rows);
}
