//! Figure 5: FOSC-OPTICSDend, label scenario — internal CVCP classification
//! scores vs. clustering scores over MinPts on a representative ALOI-like
//! data set (10 % labelled objects).

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{
    curve_figure, fosc_method, print_curve_figure, write_json, Mode, MINPTS_RANGE,
};

fn main() {
    let mode = Mode::from_args();
    let fig = curve_figure(
        "Figure 5: FOSC-OPTICSDend (label scenario) — representative ALOI data set, 10% labels",
        &fosc_method(),
        &MINPTS_RANGE,
        SideInfoSpec::LabelFraction(0.10),
        mode,
    );
    print_curve_figure(&fig);
    write_json("fig05_fosc_label_curve", &fig);
}
