//! Figure 6: MPCKMeans, label scenario — internal CVCP classification scores
//! vs. clustering scores over k on a representative ALOI-like data set
//! (10 % labelled objects).

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{
    curve_figure, k_range, mpck_method, print_curve_figure, representative_aloi, write_json, Mode,
};

fn main() {
    let mode = Mode::from_args();
    let params = k_range(&representative_aloi());
    let fig = curve_figure(
        "Figure 6: MPCKMeans (label scenario) — representative ALOI data set, 10% labels",
        &mpck_method(),
        &params,
        SideInfoSpec::LabelFraction(0.10),
        mode,
    );
    print_curve_figure(&fig);
    write_json("fig06_mpck_label_curve", &fig);
}
