//! Figure 10: MPCKMeans, label scenario — distributions of the Overall
//! F-Measure over the ALOI-like collection for CVCP, the expected baseline
//! and Silhouette-based selection at 5 / 10 / 20 % labelled objects.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{boxplot_figure, mpck_method, print_boxplot_figure, write_json, Mode};

fn main() {
    let mode = Mode::from_args();
    let fig = boxplot_figure(
        "Figure 10: MPCKMeans (label scenario) — ALOI collection quality distributions",
        &mpck_method(),
        None,
        &[
            (SideInfoSpec::LabelFraction(0.05), "5"),
            (SideInfoSpec::LabelFraction(0.10), "10"),
            (SideInfoSpec::LabelFraction(0.20), "20"),
        ],
        mode,
        true,
    );
    print_boxplot_figure(&fig);
    write_json("fig10_mpck_label_boxplot", &fig);
}
