//! Table 2: MPCKMeans, label scenario — correlation of the internal CVCP
//! scores with the Overall F-Measure across the k range, for all data sets
//! and 5 / 10 / 20 % labelled objects.

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{correlation_table, mpck_method, print_correlation_table, write_json, Mode};

fn main() {
    let mode = Mode::from_args();
    let rows = correlation_table(
        &mpck_method(),
        None, // per-data-set default k range (2..=min(2·classes, 10))
        &[
            SideInfoSpec::LabelFraction(0.05),
            SideInfoSpec::LabelFraction(0.10),
            SideInfoSpec::LabelFraction(0.20),
        ],
        mode,
        false,
    );
    print_correlation_table(
        "Table 2: MPCKMeans (label scenario) — correlation of internal scores with Overall F-Measure",
        &rows,
    );
    write_json("table02_mpck_label_corr", &rows);
}
