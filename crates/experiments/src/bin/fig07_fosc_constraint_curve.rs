//! Figure 7: FOSC-OPTICSDend, constraint scenario — internal CVCP scores vs.
//! clustering scores over MinPts on a representative ALOI-like data set
//! (10 % of the constraint pool).

use cvcp_core::experiment::SideInfoSpec;
use cvcp_experiments::{
    curve_figure, fosc_method, print_curve_figure, write_json, Mode, MINPTS_RANGE,
};

fn main() {
    let mode = Mode::from_args();
    let fig = curve_figure(
        "Figure 7: FOSC-OPTICSDend (constraint scenario) — representative ALOI data set, 10% of pool",
        &fosc_method(),
        &MINPTS_RANGE,
        SideInfoSpec::ConstraintSample {
            pool_fraction: 0.10,
            sample_fraction: 0.10,
        },
        mode,
    );
    print_curve_figure(&fig);
    write_json("fig07_fosc_constraint_curve", &fig);
}
