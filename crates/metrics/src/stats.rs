//! Descriptive statistics and box-plot summaries.
//!
//! The experiment harness aggregates Overall F-Measure values over trials and
//! data-set collections; these helpers compute the means / standard
//! deviations reported in Tables 5–16 and the five-number summaries behind
//! the box plots of Figures 9–12.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n−1 denominator); `0.0` for fewer than two
/// values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    (ss / (values.len() - 1) as f64).sqrt()
}

/// Population variance (n denominator); `0.0` for an empty slice.
pub fn population_variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Linear-interpolation quantile (type-7, the common default).  `q` must be
/// in `[0, 1]`.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median (50 % quantile).
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Mean and standard deviation of a sample, as reported in the paper's
/// performance tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Summarises a sample.  Returns a zeroed summary for an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        Self {
            n: values.len(),
            mean: mean(values),
            std: std_dev(values),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Five-number box-plot summary (plus whiskers following the 1.5 IQR rule),
/// matching what the paper's Figures 9–12 visualise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotStats {
    /// Number of observations.
    pub n: usize,
    /// Lower whisker (smallest observation ≥ Q1 − 1.5·IQR).
    pub whisker_low: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (largest observation ≤ Q3 + 1.5·IQR).
    pub whisker_high: f64,
    /// Number of outliers beyond the whiskers.
    pub n_outliers: usize,
}

impl BoxplotStats {
    /// Computes box-plot statistics.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "boxplot of empty sample");
        let q1 = quantile(values, 0.25);
        let med = median(values);
        let q3 = quantile(values, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Whiskers are clamped to the quartile box: with interpolated
        // quantiles the largest non-outlier can fall inside the box, and a
        // whisker is never drawn inside it.
        let whisker_low = values
            .iter()
            .cloned()
            .filter(|v| *v >= lo_fence)
            .fold(f64::INFINITY, f64::min)
            .min(q1);
        let whisker_high = values
            .iter()
            .cloned()
            .filter(|v| *v <= hi_fence)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(q3);
        let n_outliers = values
            .iter()
            .filter(|v| **v < lo_fence || **v > hi_fence)
            .count();
        Self {
            n: values.len(),
            whisker_low,
            q1,
            median: med,
            q3,
            whisker_high,
            n_outliers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std_basic() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        // sample std of this classic example is ~2.138
        assert!((std_dev(&v) - 2.1380899).abs() < 1e-6);
        assert!((population_variance(&v) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((median(&v) - 2.5).abs() < 1e-12);
        assert!((quantile(&v, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(median(&a), median(&b));
        assert_eq!(quantile(&a, 0.75), quantile(&b, 0.75));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boxplot_no_outliers() {
        let v: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        let b = BoxplotStats::of(&v);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.whisker_low, 1.0);
        assert_eq!(b.whisker_high, 9.0);
        assert_eq!(b.n_outliers, 0);
    }

    #[test]
    fn boxplot_detects_outlier() {
        let mut v: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        v.push(100.0);
        let b = BoxplotStats::of(&v);
        assert_eq!(b.n_outliers, 1);
        assert!(b.whisker_high <= 9.0 + 1e-12);
    }

    proptest! {
        #[test]
        fn prop_quartiles_ordered(values in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let b = BoxplotStats::of(&values);
            prop_assert!(b.whisker_low <= b.q1 + 1e-12);
            prop_assert!(b.q1 <= b.median + 1e-12);
            prop_assert!(b.median <= b.q3 + 1e-12);
            prop_assert!(b.q3 <= b.whisker_high + 1e-12);
        }

        #[test]
        fn prop_mean_within_min_max(values in proptest::collection::vec(-50.0f64..50.0, 1..40)) {
            let s = Summary::of(&values);
            prop_assert!(s.mean >= s.min - 1e-12);
            prop_assert!(s.mean <= s.max + 1e-12);
            prop_assert!(s.std >= 0.0);
        }
    }
}
