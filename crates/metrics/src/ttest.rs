//! Paired Student t-test.
//!
//! Tables 5–16 of the paper mark a mean as bold when its difference to the
//! competing method is statistically significant at the `α = 0.05` level
//! according to a *paired t-test* over the 50 experiment trials.  This module
//! provides a self-contained implementation, including the Student-t CDF via
//! the regularised incomplete beta function (no external stats crate).

/// Result of a paired t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic (`mean(d) / (sd(d)/sqrt(n))`).
    pub t_statistic: f64,
    /// Degrees of freedom (`n − 1`).
    pub degrees_of_freedom: usize,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of the paired differences (`a − b`).
    pub mean_difference: f64,
    /// Number of pairs.
    pub n: usize,
}

impl TTestResult {
    /// `true` when the two-sided p-value is below `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Error returned by [`paired_t_test`] when the two samples are not paired
/// (different lengths).
///
/// A recoverable error rather than a panic: a malformed request against a
/// long-lived, shared engine must fail that request alone, not take a worker
/// thread down with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleLengthMismatch {
    /// Length of the first sample.
    pub len_a: usize,
    /// Length of the second sample.
    pub len_b: usize,
}

impl std::fmt::Display for SampleLengthMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "paired samples must have equal length (got {} and {})",
            self.len_a, self.len_b
        )
    }
}

impl std::error::Error for SampleLengthMismatch {}

/// Performs a two-sided paired t-test of `a` against `b`.
///
/// Returns `Err` when the samples have different lengths (they cannot be
/// paired).  Returns `Ok(None)` when fewer than two pairs are available or
/// when the paired differences have (numerically) zero variance *and* zero
/// mean — in the zero-variance, non-zero-mean case the difference is
/// deterministic and the result reports `p_value = 0.0`.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<Option<TTestResult>, SampleLengthMismatch> {
    if a.len() != b.len() {
        return Err(SampleLengthMismatch {
            len_a: a.len(),
            len_b: b.len(),
        });
    }
    let n = a.len();
    if n < 2 {
        return Ok(None);
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean_d = diffs.iter().sum::<f64>() / n as f64;
    let var_d = diffs
        .iter()
        .map(|d| (d - mean_d) * (d - mean_d))
        .sum::<f64>()
        / (n as f64 - 1.0);
    let df = n - 1;

    if var_d <= 1e-24 {
        if mean_d.abs() <= 1e-24 {
            return Ok(None);
        }
        // Deterministic non-zero difference: infinitely significant.
        return Ok(Some(TTestResult {
            t_statistic: if mean_d > 0.0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            },
            degrees_of_freedom: df,
            p_value: 0.0,
            mean_difference: mean_d,
            n,
        }));
    }

    let se = (var_d / n as f64).sqrt();
    let t = mean_d / se;
    let p = 2.0 * (1.0 - student_t_cdf(t.abs(), df as f64));
    Ok(Some(TTestResult {
        t_statistic: t,
        degrees_of_freedom: df,
        p_value: p.clamp(0.0, 1.0),
        mean_difference: mean_d,
        n,
    }))
}

/// CDF of the Student-t distribution with `df` degrees of freedom, evaluated
/// at `t`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p = 0.5 * regularized_incomplete_beta(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Natural log of the gamma function (Lanczos approximation, accurate to
/// ~1e-10 for positive arguments).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    // Lanczos coefficients (g = 7, n = 9)
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection formula
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Numerical-Recipes style `betai`/`betacf`).
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // even step
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(3)=2, Γ(4)=6, Γ(0.5)=sqrt(pi)
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(3.0) - 2.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(4.0) - 6.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_edges_and_symmetry() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = regularized_incomplete_beta(2.5, 1.5, 0.3);
        let w = 1.0 - regularized_incomplete_beta(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-10);
        // uniform case: I_x(1,1) = x
        assert!((regularized_incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn student_t_cdf_reference_values() {
        // Standard reference values:
        // df=1 (Cauchy): CDF(1) = 0.75
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-9);
        // df=10: CDF(1.812) ≈ 0.95 (the 95% quantile of t_10 is ~1.8125)
        assert!((student_t_cdf(1.8125, 10.0) - 0.95).abs() < 2e-4);
        // df=30: CDF(2.042) ≈ 0.975
        assert!((student_t_cdf(2.0423, 30.0) - 0.975).abs() < 2e-4);
        // symmetry
        assert!((student_t_cdf(-1.3, 7.0) + student_t_cdf(1.3, 7.0) - 1.0).abs() < 1e-10);
        // centre
        assert!((student_t_cdf(0.0, 5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paired_t_test_detects_clear_difference() {
        let a = [0.80, 0.82, 0.78, 0.85, 0.79, 0.81, 0.83, 0.80];
        let b = [0.70, 0.71, 0.69, 0.74, 0.68, 0.72, 0.73, 0.70];
        let r = paired_t_test(&a, &b).unwrap().unwrap();
        assert!(r.t_statistic > 5.0);
        assert!(r.p_value < 0.001);
        assert!(r.significant_at(0.05));
        assert_eq!(r.degrees_of_freedom, 7);
        assert!(r.mean_difference > 0.09);
    }

    #[test]
    fn paired_t_test_no_difference_is_insignificant() {
        let a = [0.5, 0.6, 0.55, 0.62, 0.48, 0.51, 0.59, 0.53];
        let b = [0.51, 0.59, 0.56, 0.61, 0.49, 0.50, 0.60, 0.52];
        let r = paired_t_test(&a, &b).unwrap().unwrap();
        assert!(!r.significant_at(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn paired_t_test_known_statistic() {
        // differences: [1, 2, 3, 4] -> mean 2.5, sd = 1.2909..., se = 0.6455
        // t = 3.873
        let a = [2.0, 4.0, 6.0, 8.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let r = paired_t_test(&a, &b).unwrap().unwrap();
        assert!((r.t_statistic - 3.872983).abs() < 1e-5);
        assert_eq!(r.degrees_of_freedom, 3);
        // two-sided p ≈ 0.0305
        assert!((r.p_value - 0.0305).abs() < 2e-3, "p = {}", r.p_value);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(paired_t_test(&[1.0], &[2.0]).unwrap().is_none());
        assert!(paired_t_test(&[1.0, 1.0], &[1.0, 1.0]).unwrap().is_none());
        let det = paired_t_test(&[2.0, 2.0], &[1.0, 1.0]).unwrap().unwrap();
        assert_eq!(det.p_value, 0.0);
        assert!(det.t_statistic.is_infinite());
    }

    #[test]
    fn mismatched_lengths_are_a_recoverable_error() {
        // A malformed request must come back as an error — never a panic
        // that could kill a shared engine worker.
        let err = paired_t_test(&[1.0, 2.0], &[1.0]).unwrap_err();
        assert_eq!(err, SampleLengthMismatch { len_a: 2, len_b: 1 });
        assert!(err.to_string().contains("equal length"));
        assert!(paired_t_test(&[], &[1.0]).is_err());
        // equal-length empty input is not a mismatch, just too few pairs
        assert!(paired_t_test(&[], &[]).unwrap().is_none());
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone_and_bounded(df in 1.0f64..60.0, t1 in -6.0f64..6.0, t2 in -6.0f64..6.0) {
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let c_lo = student_t_cdf(lo, df);
            let c_hi = student_t_cdf(hi, df);
            prop_assert!((0.0..=1.0).contains(&c_lo));
            prop_assert!((0.0..=1.0).contains(&c_hi));
            prop_assert!(c_lo <= c_hi + 1e-12);
        }

        #[test]
        fn prop_p_value_symmetric(pairs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 3..30)) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let (Some(r1), Some(r2)) =
                (paired_t_test(&a, &b).unwrap(), paired_t_test(&b, &a).unwrap())
            {
                prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
                prop_assert!((r1.t_statistic + r2.t_statistic).abs() < 1e-9);
            }
        }
    }
}
