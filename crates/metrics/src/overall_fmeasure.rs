//! The external "Overall F-Measure" used in the paper's evaluation.
//!
//! For every ground-truth class the best-matching cluster (the one maximising
//! the class/cluster F-measure) is found; the Overall F-Measure is the
//! class-size-weighted average of these best F values.  This is the standard
//! set-matching F-measure for clusterings (Larsen & Aone style), which the
//! paper refers to as the "Overall F-Measure".
//!
//! Two details matter for fidelity with the paper:
//!
//! * objects that were involved in the side information given to the
//!   semi-supervised algorithm must be excluded from the external evaluation
//!   ("set aside" — Section 2 and 4.1); use [`overall_fmeasure_excluding`];
//! * noise objects (density-based algorithms may leave objects unclustered)
//!   count towards the class sizes but belong to no cluster, so they can only
//!   lower recall — leaving everything as noise does not score well.

use cvcp_data::Partition;

/// Computes the Overall F-Measure between `partition` and the ground-truth
/// `classes` over all objects.
///
/// # Panics
///
/// Panics if the partition and class labelling have different lengths.
pub fn overall_fmeasure(partition: &Partition, classes: &[usize]) -> f64 {
    assert_eq!(
        partition.len(),
        classes.len(),
        "partition and ground truth must cover the same objects"
    );
    let all: Vec<usize> = (0..classes.len()).collect();
    overall_fmeasure_on(partition, classes, &all)
}

/// Computes the Overall F-Measure excluding the given objects (typically the
/// objects involved in labels or constraints used for training).
pub fn overall_fmeasure_excluding(
    partition: &Partition,
    classes: &[usize],
    excluded: &[usize],
) -> f64 {
    assert_eq!(
        partition.len(),
        classes.len(),
        "partition and ground truth must cover the same objects"
    );
    let excluded: std::collections::BTreeSet<usize> = excluded.iter().copied().collect();
    let kept: Vec<usize> = (0..classes.len())
        .filter(|i| !excluded.contains(i))
        .collect();
    overall_fmeasure_on(partition, classes, &kept)
}

/// The Overall F-Measure restricted to the objects in `kept`.
fn overall_fmeasure_on(partition: &Partition, classes: &[usize], kept: &[usize]) -> f64 {
    if kept.is_empty() {
        return 0.0;
    }

    // Class members and cluster members restricted to the kept objects.
    let n_classes = kept.iter().map(|&i| classes[i]).max().map_or(0, |m| m + 1);
    let mut class_members: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for &i in kept {
        class_members[classes[i]].push(i);
    }

    // Map cluster ids to dense indices over the kept objects.
    let mut cluster_ids: Vec<usize> = kept
        .iter()
        .filter_map(|&i| partition.cluster_of(i))
        .collect();
    cluster_ids.sort_unstable();
    cluster_ids.dedup();
    let cluster_index = |c: usize| cluster_ids.binary_search(&c).expect("cluster id present");
    let mut cluster_sizes = vec![0usize; cluster_ids.len()];
    // intersection counts: class x cluster
    let mut intersect = vec![vec![0usize; cluster_ids.len()]; n_classes];
    for &i in kept {
        if let Some(c) = partition.cluster_of(i) {
            let ci = cluster_index(c);
            cluster_sizes[ci] += 1;
            intersect[classes[i]][ci] += 1;
        }
    }

    let total = kept.len() as f64;
    let mut overall = 0.0;
    for (class, members) in class_members.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let class_size = members.len() as f64;
        let mut best_f = 0.0f64;
        for (ci, &cluster_size) in cluster_sizes.iter().enumerate() {
            let inter = intersect[class][ci] as f64;
            if inter == 0.0 || cluster_size == 0 {
                continue;
            }
            let precision = inter / cluster_size as f64;
            let recall = inter / class_size;
            let f = 2.0 * precision * recall / (precision + recall);
            if f > best_f {
                best_f = f;
            }
        }
        overall += class_size / total * best_f;
    }
    overall
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let classes = vec![0, 0, 1, 1, 2, 2];
        let p = Partition::from_cluster_ids(&[5, 5, 9, 9, 0, 0]);
        assert!((overall_fmeasure(&p, &classes) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cluster_ids_do_not_matter() {
        let classes = vec![0, 0, 1, 1];
        let a = Partition::from_cluster_ids(&[0, 0, 1, 1]);
        let b = Partition::from_cluster_ids(&[1, 1, 0, 0]);
        assert_eq!(
            overall_fmeasure(&a, &classes),
            overall_fmeasure(&b, &classes)
        );
    }

    #[test]
    fn all_in_one_cluster_scores_below_one_for_multiclass() {
        let classes = vec![0, 0, 0, 1, 1, 1];
        let p = Partition::from_cluster_ids(&[0; 6]);
        let f = overall_fmeasure(&p, &classes);
        // each class: precision 0.5, recall 1.0 -> F = 2/3
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_noise_scores_zero() {
        let classes = vec![0, 0, 1, 1];
        let p = Partition::all_noise(4);
        assert_eq!(overall_fmeasure(&p, &classes), 0.0);
    }

    #[test]
    fn splitting_a_class_lowers_the_score() {
        let classes = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let perfect = Partition::from_cluster_ids(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let split = Partition::from_cluster_ids(&[0, 0, 2, 2, 1, 1, 1, 1]);
        assert!(overall_fmeasure(&perfect, &classes) > overall_fmeasure(&split, &classes));
    }

    #[test]
    fn excluding_objects_changes_the_evaluation_set() {
        let classes = vec![0, 0, 1, 1];
        // object 0 is misclustered
        let p = Partition::from_cluster_ids(&[1, 0, 1, 1]);
        let with_all = overall_fmeasure(&p, &classes);
        let without_bad = overall_fmeasure_excluding(&p, &classes, &[0]);
        assert!(without_bad > with_all);
        assert!((without_bad - 1.0).abs() < 1e-12);
    }

    #[test]
    fn excluding_everything_scores_zero() {
        let classes = vec![0, 1];
        let p = Partition::from_cluster_ids(&[0, 1]);
        assert_eq!(overall_fmeasure_excluding(&p, &classes, &[0, 1]), 0.0);
    }

    #[test]
    fn partial_noise_lowers_recall() {
        let classes = vec![0, 0, 0, 0];
        let full = Partition::from_cluster_ids(&[0, 0, 0, 0]);
        let partial = Partition::from_optional_ids(&[Some(0), Some(0), None, None]);
        let f_full = overall_fmeasure(&full, &classes);
        let f_partial = overall_fmeasure(&partial, &classes);
        assert!((f_full - 1.0).abs() < 1e-12);
        assert!(f_partial < f_full);
        // precision 1, recall 0.5 -> F = 2/3
        assert!((f_partial - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn length_mismatch_panics() {
        let p = Partition::from_cluster_ids(&[0, 1]);
        let _ = overall_fmeasure(&p, &[0, 1, 1]);
    }

    proptest! {
        /// The Overall F-Measure is bounded in [0, 1], invariant to cluster
        /// relabelling, and exactly 1 for the ground-truth partition.
        #[test]
        fn prop_bounds_and_perfection(
            classes in proptest::collection::vec(0usize..4, 4..40),
            assignment in proptest::collection::vec(proptest::option::of(0usize..5), 4..40),
        ) {
            let n = classes.len().min(assignment.len());
            let classes: Vec<usize> = {
                // re-make contiguous
                let mut v = classes[..n].to_vec();
                let mut present: Vec<usize> = v.clone();
                present.sort_unstable();
                present.dedup();
                for x in v.iter_mut() {
                    *x = present.binary_search(x).unwrap();
                }
                v
            };
            let assignment = &assignment[..n];

            let p = Partition::from_optional_ids(assignment);
            let f = overall_fmeasure(&p, &classes);
            prop_assert!((0.0..=1.0).contains(&f), "f = {f}");

            let perfect = Partition::from_cluster_ids(&classes);
            prop_assert!((overall_fmeasure(&perfect, &classes) - 1.0).abs() < 1e-12);

            // relabel clusters by adding 10 to each id
            let relabeled = Partition::from_optional_ids(
                &assignment.iter().map(|a| a.map(|c| c + 10)).collect::<Vec<_>>(),
            );
            prop_assert!((overall_fmeasure(&relabeled, &classes) - f).abs() < 1e-12);
        }
    }
}
