//! Correlation coefficients.
//!
//! Tables 1–4 of the paper report, per data set and amount of side
//! information, the *Pearson correlation* between the internal CVCP scores
//! and the external Overall F-Measure values across the parameter range.
//! Spearman rank correlation is provided as an additional robustness check.

/// Pearson product-moment correlation of two equally long samples.
///
/// Returns `0.0` when either sample has zero variance (a flat curve carries
/// no correlation information — the paper's tables would show blank/low
/// entries there) or when fewer than two points are given.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 1e-24 || syy <= 1e-24 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

/// Spearman rank correlation (Pearson correlation of the ranks, average ranks
/// for ties).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Average ranks (1-based) with ties receiving the mean of their positions.
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("no NaN in rank input")
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (values[order[j + 1]] - values[order[i]]).abs() < 1e-15 {
            j += 1;
        }
        // positions i..=j are tied; their rank is the average of (i+1)..=(j+1)
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos = [2.0, 4.0, 6.0, 8.0];
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y_pos) - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y_neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_pearson_value() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        // hand-computed: r = 0.8
        assert!((pearson(&x, &y) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_zero_correlation() {
        let x = [1.0, 1.0, 1.0];
        let y = [0.2, 0.5, 0.9];
        assert_eq!(pearson(&x, &y), 0.0);
        assert_eq!(pearson(&y, &x), 0.0);
    }

    #[test]
    fn short_series() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn spearman_is_monotonic_invariant() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        // y is a nonlinear but monotone transform of x
        let y: Vec<f64> = x.iter().map(|v| f64::exp(*v)).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let r = ranks(&x);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }

    proptest! {
        #[test]
        fn prop_pearson_bounds_and_symmetry(
            pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..40),
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let r = pearson(&x, &y);
            prop_assert!((-1.0..=1.0).contains(&r));
            prop_assert!((pearson(&y, &x) - r).abs() < 1e-9);
            // shift/scale invariance
            let xs: Vec<f64> = x.iter().map(|v| v * 3.0 + 7.0).collect();
            prop_assert!((pearson(&xs, &y) - r).abs() < 1e-6);
        }

        #[test]
        fn prop_self_correlation_is_one(values in proptest::collection::vec(-10.0f64..10.0, 2..30)) {
            // needs non-constant input
            prop_assume!(values.iter().any(|v| (v - values[0]).abs() > 1e-9));
            prop_assert!((pearson(&values, &values) - 1.0).abs() < 1e-9);
            prop_assert!((spearman(&values, &values) - 1.0).abs() < 1e-9);
        }
    }
}
