//! # cvcp-metrics
//!
//! Evaluation measures and statistics for the CVCP suite:
//!
//! * [`constraint_fmeasure()`]: the paper's **internal classification
//!   F-measure** — a clustering is treated as a classifier over must-link
//!   (class 1) and cannot-link (class 0) constraints, and the average of the
//!   per-class F-measures is reported (Section 3.2 of the paper);
//! * [`overall_fmeasure()`]: the external **Overall F-Measure** comparing a
//!   partition against ground-truth classes (class-weighted best-match F),
//!   with support for excluding the objects involved in side information
//!   ("set aside" evaluation, Section 2);
//! * [`pair_counting`]: Rand index and Adjusted Rand Index;
//! * [`nmi`]: normalised mutual information;
//! * [`silhouette`]: the Silhouette coefficient, used by the paper as the
//!   unsupervised model-selection baseline for MPCKMeans;
//! * [`stats`]: descriptive statistics and box-plot summaries;
//! * [`correlation`]: Pearson and Spearman correlation (Tables 1–4);
//! * [`ttest`]: the paired t-test used for the significance marks in
//!   Tables 5–16, with a self-contained Student-t CDF.

#![warn(missing_docs)]

pub mod constraint_fmeasure;
pub mod correlation;
pub mod nmi;
pub mod overall_fmeasure;
pub mod pair_counting;
pub mod silhouette;
pub mod stats;
pub mod ttest;
pub mod vmeasure;

pub use constraint_fmeasure::{
    constraint_classification_report, constraint_fmeasure, BinaryReport,
};
pub use correlation::{pearson, spearman};
pub use nmi::normalized_mutual_information;
pub use overall_fmeasure::{overall_fmeasure, overall_fmeasure_excluding};
pub use pair_counting::{adjusted_rand_index, rand_index};
pub use silhouette::{silhouette_coefficient, silhouette_from_pairwise};
pub use stats::{mean, std_dev, BoxplotStats, Summary};
pub use ttest::{paired_t_test, SampleLengthMismatch, TTestResult};
pub use vmeasure::{fowlkes_mallows, v_measure, VMeasure};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::constraint_fmeasure::{constraint_fmeasure, BinaryReport};
    pub use crate::correlation::pearson;
    pub use crate::overall_fmeasure::{overall_fmeasure, overall_fmeasure_excluding};
    pub use crate::pair_counting::adjusted_rand_index;
    pub use crate::silhouette::{silhouette_coefficient, silhouette_from_pairwise};
    pub use crate::stats::{mean, std_dev, Summary};
    pub use crate::ttest::paired_t_test;
}
