//! Pair-counting external evaluation measures: Rand index and Adjusted Rand
//! Index (Hubert & Arabie 1985, reference \[18\] of the paper).
//!
//! These are provided alongside the Overall F-Measure for completeness and
//! are used by some of the suite's tests as an independent check that two
//! partitions agree.  Noise objects are treated as singleton clusters of
//! their own (a common convention for density-based results).

use cvcp_data::Partition;

/// Contingency information between a partition and ground-truth classes.
struct Contingency {
    /// n_ij counts.
    table: Vec<Vec<usize>>,
    /// Row sums (cluster sizes).
    row_sums: Vec<usize>,
    /// Column sums (class sizes).
    col_sums: Vec<usize>,
    /// Total number of objects.
    n: usize,
}

fn contingency(partition: &Partition, classes: &[usize]) -> Contingency {
    assert_eq!(partition.len(), classes.len(), "length mismatch");
    let n = classes.len();
    // Noise objects become singleton clusters appended after the real ones.
    let mut cluster_ids: Vec<usize> = (0..n).filter_map(|i| partition.cluster_of(i)).collect();
    cluster_ids.sort_unstable();
    cluster_ids.dedup();
    let n_real_clusters = cluster_ids.len();
    let mut next_singleton = n_real_clusters;
    let cluster_of: Vec<usize> = (0..n)
        .map(|i| match partition.cluster_of(i) {
            Some(c) => cluster_ids.binary_search(&c).expect("present"),
            None => {
                let id = next_singleton;
                next_singleton += 1;
                id
            }
        })
        .collect();
    let n_clusters = next_singleton;
    let n_classes = classes.iter().copied().max().map_or(0, |m| m + 1);

    let mut table = vec![vec![0usize; n_classes]; n_clusters];
    let mut row_sums = vec![0usize; n_clusters];
    let mut col_sums = vec![0usize; n_classes];
    for i in 0..n {
        table[cluster_of[i]][classes[i]] += 1;
        row_sums[cluster_of[i]] += 1;
        col_sums[classes[i]] += 1;
    }
    Contingency {
        table,
        row_sums,
        col_sums,
        n,
    }
}

fn choose2(x: usize) -> f64 {
    (x as f64) * ((x as f64) - 1.0) / 2.0
}

/// The (unadjusted) Rand index in `[0, 1]`.
pub fn rand_index(partition: &Partition, classes: &[usize]) -> f64 {
    let c = contingency(partition, classes);
    if c.n < 2 {
        return 1.0;
    }
    let total_pairs = choose2(c.n);
    let sum_ij: f64 = c.table.iter().flatten().map(|&v| choose2(v)).sum();
    let sum_rows: f64 = c.row_sums.iter().map(|&v| choose2(v)).sum();
    let sum_cols: f64 = c.col_sums.iter().map(|&v| choose2(v)).sum();
    // agreements = pairs together in both + pairs separated in both
    let agree = sum_ij + (total_pairs - sum_rows - sum_cols + sum_ij);
    agree / total_pairs
}

/// The Adjusted Rand Index in `[-1, 1]`, with expected value 0 for random
/// labelings and 1 for identical partitions.
pub fn adjusted_rand_index(partition: &Partition, classes: &[usize]) -> f64 {
    let c = contingency(partition, classes);
    if c.n < 2 {
        return 1.0;
    }
    let total_pairs = choose2(c.n);
    let sum_ij: f64 = c.table.iter().flatten().map(|&v| choose2(v)).sum();
    let sum_rows: f64 = c.row_sums.iter().map(|&v| choose2(v)).sum();
    let sum_cols: f64 = c.col_sums.iter().map(|&v| choose2(v)).sum();
    let expected = sum_rows * sum_cols / total_pairs;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate case (e.g. all objects in one class and one cluster).
        return if (sum_ij - expected).abs() < 1e-12 {
            1.0
        } else {
            0.0
        };
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_partitions_score_one() {
        let classes = vec![0, 0, 1, 1, 2];
        let p = Partition::from_cluster_ids(&[4, 4, 7, 7, 1]);
        assert!((rand_index(&p, &classes) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&p, &classes) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_ari_value() {
        // Classic example: classes [0,0,0,1,1,1], clusters [0,0,1,1,2,2]
        let classes = vec![0, 0, 0, 1, 1, 1];
        let p = Partition::from_cluster_ids(&[0, 0, 1, 1, 2, 2]);
        let ari = adjusted_rand_index(&p, &classes);
        // contingency: [[2,0],[1,1],[0,2]]; sum_ij C2 = 1+0+0+0+0+1 = 2
        // rows: 1+1+1=3 ; cols: 3+3=6 ; total pairs = 15
        // expected = 3*6/15 = 1.2 ; max = 4.5 ; ari = (2-1.2)/(4.5-1.2) = 0.242424...
        assert!((ari - 0.242424242).abs() < 1e-6, "ari = {ari}");
    }

    #[test]
    fn rand_index_of_opposite_split() {
        let classes = vec![0, 0, 1, 1];
        let p = Partition::from_cluster_ids(&[0, 1, 0, 1]);
        // agreements: only the cross pairs that are separated in both... compute:
        // pairs: (0,1) same class diff cluster -> disagree; (2,3) same class diff cluster -> disagree
        // (0,2) diff class same cluster -> disagree; (1,3) diff class same cluster -> disagree
        // (0,3) diff class diff cluster -> agree; (1,2) diff class diff cluster -> agree
        assert!((rand_index(&p, &classes) - 2.0 / 6.0).abs() < 1e-12);
        assert!(adjusted_rand_index(&p, &classes) < 0.01);
    }

    #[test]
    fn noise_counts_as_singletons() {
        let classes = vec![0, 0, 1, 1];
        let clustered = Partition::from_cluster_ids(&[0, 0, 1, 1]);
        let noisy = Partition::from_optional_ids(&[Some(0), Some(0), None, None]);
        assert!(adjusted_rand_index(&clustered, &classes) > adjusted_rand_index(&noisy, &classes));
        // but the noisy one still gets credit for the intact cluster
        assert!(adjusted_rand_index(&noisy, &classes) > 0.0);
    }

    #[test]
    fn single_object_edge_case() {
        let p = Partition::from_cluster_ids(&[0]);
        assert_eq!(rand_index(&p, &[0]), 1.0);
        assert_eq!(adjusted_rand_index(&p, &[0]), 1.0);
    }

    #[test]
    fn degenerate_single_cluster_single_class() {
        let classes = vec![0, 0, 0];
        let p = Partition::from_cluster_ids(&[0, 0, 0]);
        assert_eq!(adjusted_rand_index(&p, &classes), 1.0);
        assert_eq!(rand_index(&p, &classes), 1.0);
    }

    proptest! {
        /// ARI is symmetric-ish in the sense of being invariant to cluster
        /// relabelling, bounded above by 1, and the Rand index stays in [0,1].
        #[test]
        fn prop_indices_bounded(
            classes in proptest::collection::vec(0usize..3, 3..30),
            clusters in proptest::collection::vec(0usize..4, 3..30),
        ) {
            let n = classes.len().min(clusters.len());
            let classes = {
                let mut v = classes[..n].to_vec();
                let mut present = v.clone();
                present.sort_unstable();
                present.dedup();
                for x in v.iter_mut() { *x = present.binary_search(x).unwrap(); }
                v
            };
            let p = Partition::from_cluster_ids(&clusters[..n]);
            let ri = rand_index(&p, &classes);
            let ari = adjusted_rand_index(&p, &classes);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ri));
            prop_assert!(ari <= 1.0 + 1e-12);
            prop_assert!(ari >= -1.0 - 1e-12);

            let relabeled = Partition::from_cluster_ids(
                &clusters[..n].iter().map(|c| c + 5).collect::<Vec<_>>(),
            );
            prop_assert!((adjusted_rand_index(&relabeled, &classes) - ari).abs() < 1e-9);
        }
    }
}
