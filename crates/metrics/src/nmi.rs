//! Normalised mutual information between a partition and ground-truth
//! classes.  Included as an additional external measure for the suite's
//! extended analyses; the paper itself reports the Overall F-Measure.

use cvcp_data::Partition;

/// Computes the normalised mutual information (NMI) between `partition` and
/// `classes`, using the arithmetic-mean normalisation
/// `NMI = 2 I(U;V) / (H(U) + H(V))`.
///
/// Noise objects are treated as singleton clusters.  Returns 1.0 when both
/// partitions are identical and both entropies are zero (single cluster and
/// single class), and 0.0 when either side carries no information while the
/// other does.
pub fn normalized_mutual_information(partition: &Partition, classes: &[usize]) -> f64 {
    assert_eq!(partition.len(), classes.len(), "length mismatch");
    let n = classes.len();
    if n == 0 {
        return 1.0;
    }

    // Cluster labels with noise as singletons.
    let mut cluster_ids: Vec<usize> = (0..n).filter_map(|i| partition.cluster_of(i)).collect();
    cluster_ids.sort_unstable();
    cluster_ids.dedup();
    let mut next = cluster_ids.len();
    let cluster_of: Vec<usize> = (0..n)
        .map(|i| match partition.cluster_of(i) {
            Some(c) => cluster_ids.binary_search(&c).expect("present"),
            None => {
                let id = next;
                next += 1;
                id
            }
        })
        .collect();
    let n_clusters = next;
    let n_classes = classes.iter().copied().max().map_or(0, |m| m + 1);

    let mut joint = vec![vec![0usize; n_classes]; n_clusters];
    let mut pu = vec![0usize; n_clusters];
    let mut pv = vec![0usize; n_classes];
    for i in 0..n {
        joint[cluster_of[i]][classes[i]] += 1;
        pu[cluster_of[i]] += 1;
        pv[classes[i]] += 1;
    }

    let nf = n as f64;
    let entropy = |counts: &[usize]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let hu = entropy(&pu);
    let hv = entropy(&pv);

    let mut mi = 0.0;
    for (u, row) in joint.iter().enumerate() {
        for (v, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let p_uv = c as f64 / nf;
            let p_u = pu[u] as f64 / nf;
            let p_v = pv[v] as f64 / nf;
            mi += p_uv * (p_uv / (p_u * p_v)).ln();
        }
    }

    if hu + hv == 0.0 {
        // both sides are a single group: identical by definition
        return 1.0;
    }
    (2.0 * mi / (hu + hv)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_partitions_have_nmi_one() {
        let classes = vec![0, 0, 1, 1, 2, 2];
        let p = Partition::from_cluster_ids(&[3, 3, 8, 8, 5, 5]);
        assert!((normalized_mutual_information(&p, &classes) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partition_has_low_nmi() {
        // Alternating clusters vs. block classes: close to independent.
        let classes = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let p = Partition::from_cluster_ids(&[0, 1, 0, 1, 0, 1, 0, 1]);
        let nmi = normalized_mutual_information(&p, &classes);
        assert!(nmi < 0.05, "nmi = {nmi}");
    }

    #[test]
    fn single_cluster_vs_multiple_classes_is_zero() {
        let classes = vec![0, 0, 1, 1];
        let p = Partition::from_cluster_ids(&[0, 0, 0, 0]);
        assert_eq!(normalized_mutual_information(&p, &classes), 0.0);
    }

    #[test]
    fn all_same_class_and_cluster_is_one() {
        let classes = vec![0, 0, 0];
        let p = Partition::from_cluster_ids(&[2, 2, 2]);
        assert_eq!(normalized_mutual_information(&p, &classes), 1.0);
    }

    #[test]
    fn refinement_scores_between_zero_and_one() {
        let classes = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let p = Partition::from_cluster_ids(&[0, 0, 1, 1, 2, 2, 3, 3]);
        let nmi = normalized_mutual_information(&p, &classes);
        assert!(nmi > 0.5 && nmi < 1.0, "nmi = {nmi}");
    }

    #[test]
    fn noise_reduces_information() {
        let classes = vec![0, 0, 1, 1];
        let full = Partition::from_cluster_ids(&[0, 0, 1, 1]);
        let noisy = Partition::from_optional_ids(&[Some(0), None, Some(1), None]);
        assert!(
            normalized_mutual_information(&noisy, &classes)
                < normalized_mutual_information(&full, &classes)
        );
    }

    proptest! {
        #[test]
        fn prop_nmi_bounds(
            classes in proptest::collection::vec(0usize..3, 2..30),
            clusters in proptest::collection::vec(0usize..4, 2..30),
        ) {
            let n = classes.len().min(clusters.len());
            let classes = {
                let mut v = classes[..n].to_vec();
                let mut present = v.clone();
                present.sort_unstable();
                present.dedup();
                for x in v.iter_mut() { *x = present.binary_search(x).unwrap(); }
                v
            };
            let p = Partition::from_cluster_ids(&clusters[..n]);
            let nmi = normalized_mutual_information(&p, &classes);
            prop_assert!((0.0..=1.0).contains(&nmi));
            // identity
            let id = Partition::from_cluster_ids(&classes);
            prop_assert!((normalized_mutual_information(&id, &classes) - 1.0).abs() < 1e-9);
        }
    }
}
