//! Homogeneity, completeness and V-measure (Rosenberg & Hirschberg 2007).
//!
//! Additional external measures used by the suite's extended analyses; they
//! complement the Overall F-Measure the paper reports and behave more
//! gracefully when the number of clusters differs strongly from the number
//! of classes.

use cvcp_data::Partition;

/// Entropy-based external evaluation scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VMeasure {
    /// Each cluster contains only members of a single class (1 = perfect).
    pub homogeneity: f64,
    /// All members of a class are assigned to the same cluster (1 = perfect).
    pub completeness: f64,
    /// Harmonic mean of homogeneity and completeness.
    pub v_measure: f64,
}

/// Computes homogeneity, completeness and the V-measure of `partition`
/// against the ground-truth `classes`.  Noise objects are treated as
/// singleton clusters.
///
/// # Panics
///
/// Panics if the partition and the class labelling have different lengths.
pub fn v_measure(partition: &Partition, classes: &[usize]) -> VMeasure {
    assert_eq!(partition.len(), classes.len(), "length mismatch");
    let n = classes.len();
    if n == 0 {
        return VMeasure {
            homogeneity: 1.0,
            completeness: 1.0,
            v_measure: 1.0,
        };
    }

    // Dense cluster ids with noise as singletons.
    let mut cluster_ids: Vec<usize> = (0..n).filter_map(|i| partition.cluster_of(i)).collect();
    cluster_ids.sort_unstable();
    cluster_ids.dedup();
    let mut next = cluster_ids.len();
    let cluster_of: Vec<usize> = (0..n)
        .map(|i| match partition.cluster_of(i) {
            Some(c) => cluster_ids.binary_search(&c).expect("present"),
            None => {
                let id = next;
                next += 1;
                id
            }
        })
        .collect();
    let n_clusters = next;
    let n_classes = classes.iter().copied().max().map_or(0, |m| m + 1);

    let mut joint = vec![vec![0usize; n_classes]; n_clusters];
    let mut per_cluster = vec![0usize; n_clusters];
    let mut per_class = vec![0usize; n_classes];
    for i in 0..n {
        joint[cluster_of[i]][classes[i]] += 1;
        per_cluster[cluster_of[i]] += 1;
        per_class[classes[i]] += 1;
    }

    let nf = n as f64;
    let entropy = |counts: &[usize]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum::<f64>()
    };
    let h_class = entropy(&per_class);
    let h_cluster = entropy(&per_cluster);

    // Conditional entropies H(class | cluster) and H(cluster | class).
    let mut h_class_given_cluster = 0.0;
    let mut h_cluster_given_class = 0.0;
    for (k, row) in joint.iter().enumerate() {
        for (c, &count) in row.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let p_joint = count as f64 / nf;
            h_class_given_cluster -= p_joint * (count as f64 / per_cluster[k] as f64).ln();
            h_cluster_given_class -= p_joint * (count as f64 / per_class[c] as f64).ln();
        }
    }

    let homogeneity = if h_class == 0.0 {
        1.0
    } else {
        1.0 - h_class_given_cluster / h_class
    };
    let completeness = if h_cluster == 0.0 {
        1.0
    } else {
        1.0 - h_cluster_given_class / h_cluster
    };
    let v = if homogeneity + completeness == 0.0 {
        0.0
    } else {
        2.0 * homogeneity * completeness / (homogeneity + completeness)
    };
    VMeasure {
        homogeneity: homogeneity.clamp(0.0, 1.0),
        completeness: completeness.clamp(0.0, 1.0),
        v_measure: v.clamp(0.0, 1.0),
    }
}

/// The Fowlkes–Mallows index: the geometric mean of pair-level precision and
/// recall.  Noise objects are treated as singleton clusters.
pub fn fowlkes_mallows(partition: &Partition, classes: &[usize]) -> f64 {
    assert_eq!(partition.len(), classes.len(), "length mismatch");
    let n = classes.len();
    let mut tp = 0.0f64; // same cluster & same class pairs
    let mut fp = 0.0f64; // same cluster, different class
    let mut fn_ = 0.0f64; // different cluster, same class
    for i in 0..n {
        for j in (i + 1)..n {
            let same_cluster = partition.same_cluster(i, j);
            let same_class = classes[i] == classes[j];
            match (same_cluster, same_class) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, true) => fn_ += 1.0,
                (false, false) => {}
            }
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    (tp / (tp + fp)).sqrt() * (tp / (tp + fn_)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let classes = vec![0, 0, 1, 1, 2, 2];
        let p = Partition::from_cluster_ids(&[7, 7, 3, 3, 9, 9]);
        let v = v_measure(&p, &classes);
        assert!((v.homogeneity - 1.0).abs() < 1e-12);
        assert!((v.completeness - 1.0).abs() < 1e-12);
        assert!((v.v_measure - 1.0).abs() < 1e-12);
        assert!((fowlkes_mallows(&p, &classes) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn over_splitting_is_homogeneous_but_incomplete() {
        let classes = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let p = Partition::from_cluster_ids(&[0, 0, 1, 1, 2, 2, 3, 3]);
        let v = v_measure(&p, &classes);
        assert!((v.homogeneity - 1.0).abs() < 1e-12);
        assert!(v.completeness < 1.0);
        assert!(v.v_measure < 1.0 && v.v_measure > 0.0);
    }

    #[test]
    fn single_cluster_is_complete_but_not_homogeneous() {
        let classes = vec![0, 0, 1, 1];
        let p = Partition::from_cluster_ids(&[0, 0, 0, 0]);
        let v = v_measure(&p, &classes);
        assert!((v.completeness - 1.0).abs() < 1e-12);
        assert!(v.homogeneity < 1e-12);
        assert_eq!(v.v_measure, 0.0);
    }

    #[test]
    fn fowlkes_mallows_known_value() {
        // classes [0,0,1,1], clusters [0,1,0,1]:
        // tp = 0 -> FM = 0
        let classes = vec![0, 0, 1, 1];
        let p = Partition::from_cluster_ids(&[0, 1, 0, 1]);
        assert_eq!(fowlkes_mallows(&p, &classes), 0.0);
    }

    #[test]
    fn noise_objects_behave_as_singletons() {
        let classes = vec![0, 0, 1, 1];
        let full = Partition::from_cluster_ids(&[0, 0, 1, 1]);
        let noisy = Partition::from_optional_ids(&[Some(0), None, Some(1), None]);
        assert!(v_measure(&noisy, &classes).completeness < v_measure(&full, &classes).completeness);
        assert!(fowlkes_mallows(&noisy, &classes) < fowlkes_mallows(&full, &classes));
    }

    proptest! {
        #[test]
        fn prop_scores_bounded_and_relabel_invariant(
            classes in proptest::collection::vec(0usize..3, 2..25),
            clusters in proptest::collection::vec(0usize..4, 2..25),
        ) {
            let n = classes.len().min(clusters.len());
            let classes = {
                let mut v = classes[..n].to_vec();
                let mut present = v.clone();
                present.sort_unstable();
                present.dedup();
                for x in v.iter_mut() { *x = present.binary_search(x).unwrap(); }
                v
            };
            let p = Partition::from_cluster_ids(&clusters[..n]);
            let v = v_measure(&p, &classes);
            for s in [v.homogeneity, v.completeness, v.v_measure] {
                prop_assert!((0.0..=1.0).contains(&s));
            }
            let fm = fowlkes_mallows(&p, &classes);
            prop_assert!((0.0..=1.0).contains(&fm));

            let relabeled = Partition::from_cluster_ids(
                &clusters[..n].iter().map(|c| c + 11).collect::<Vec<_>>(),
            );
            let v2 = v_measure(&relabeled, &classes);
            prop_assert!((v.v_measure - v2.v_measure).abs() < 1e-9);
        }
    }
}
