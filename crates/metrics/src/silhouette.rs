//! The Silhouette coefficient (Kaufman & Rousseeuw 1990).
//!
//! The paper uses the Silhouette coefficient as the *unsupervised* baseline
//! for selecting the number of clusters `k` of MPCKMeans (Section 4.3): for
//! every candidate `k` the clustering is computed and the `k` with the best
//! Silhouette value is chosen ("Sil" columns of Tables 8–10 and 14–16).

use cvcp_data::distance::Distance;
use cvcp_data::{DataMatrix, Partition};

/// Computes the mean Silhouette coefficient of `partition` over `data`.
///
/// For each clustered object `i` with cluster `C`:
/// `a(i)` is the mean distance to the other members of `C`,
/// `b(i)` is the smallest mean distance to the members of any other cluster,
/// and `s(i) = (b - a) / max(a, b)`.  Objects in singleton clusters get
/// `s(i) = 0`; noise objects are ignored.
///
/// Returns `None` when fewer than two clusters contain objects (the
/// coefficient is undefined there) — model-selection code treats such
/// configurations as worst-possible.
pub fn silhouette_coefficient<D: Distance + ?Sized>(
    data: &DataMatrix,
    partition: &Partition,
    metric: &D,
) -> Option<f64> {
    assert_eq!(data.n_rows(), partition.len(), "length mismatch");
    silhouette_with(|i, j| metric.distance(data.row(i), data.row(j)), partition)
}

/// Computes the mean Silhouette coefficient from a precomputed pairwise
/// distance matrix (`dist[i][j]` = distance between objects `i` and `j`).
///
/// **Bit-identical** to [`silhouette_coefficient`] when `dist` was produced
/// by `pairwise_matrix` under the same metric — both paths accumulate the
/// same distances in the same order.  Model-selection code shares one
/// matrix (via the engine's artifact cache) across every candidate
/// parameter and trial instead of recomputing `O(n²·d)` distances per
/// partition.
pub fn silhouette_from_pairwise(dist: &[Vec<f64>], partition: &Partition) -> Option<f64> {
    assert_eq!(dist.len(), partition.len(), "length mismatch");
    silhouette_with(|i, j| dist[i][j], partition)
}

/// The shared Silhouette loop over an arbitrary pairwise distance oracle.
fn silhouette_with(distance: impl Fn(usize, usize) -> f64, partition: &Partition) -> Option<f64> {
    let members = partition.cluster_members();
    let non_empty: Vec<&Vec<usize>> = members.iter().filter(|m| !m.is_empty()).collect();
    if non_empty.len() < 2 {
        return None;
    }

    let mut total = 0.0;
    let mut count = 0usize;
    for (ci, cluster) in non_empty.iter().enumerate() {
        for &i in cluster.iter() {
            if cluster.len() == 1 {
                // Singleton: contributes 0 by convention.
                count += 1;
                continue;
            }
            let a: f64 = cluster
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| distance(i, j))
                .sum::<f64>()
                / (cluster.len() - 1) as f64;

            let mut b = f64::INFINITY;
            for (cj, other) in non_empty.iter().enumerate() {
                if ci == cj {
                    continue;
                }
                let mean_d: f64 =
                    other.iter().map(|&j| distance(i, j)).sum::<f64>() / other.len() as f64;
                if mean_d < b {
                    b = mean_d;
                }
            }
            let denom = a.max(b);
            let s = if denom > 0.0 { (b - a) / denom } else { 0.0 };
            total += s;
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(total / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_data::distance::Euclidean;

    fn two_blobs() -> DataMatrix {
        DataMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ])
    }

    #[test]
    fn well_separated_clusters_score_close_to_one() {
        let data = two_blobs();
        let p = Partition::from_cluster_ids(&[0, 0, 0, 1, 1, 1]);
        let s = silhouette_coefficient(&data, &p, &Euclidean).unwrap();
        assert!(s > 0.95, "silhouette {s}");
    }

    #[test]
    fn wrong_clustering_scores_lower() {
        let data = two_blobs();
        let good = Partition::from_cluster_ids(&[0, 0, 0, 1, 1, 1]);
        let bad = Partition::from_cluster_ids(&[0, 1, 0, 1, 0, 1]);
        let s_good = silhouette_coefficient(&data, &good, &Euclidean).unwrap();
        let s_bad = silhouette_coefficient(&data, &bad, &Euclidean).unwrap();
        assert!(s_good > s_bad);
        assert!(
            s_bad < 0.0,
            "mixing the blobs should give a negative value, got {s_bad}"
        );
    }

    #[test]
    fn single_cluster_is_undefined() {
        let data = two_blobs();
        let p = Partition::from_cluster_ids(&[0; 6]);
        assert!(silhouette_coefficient(&data, &p, &Euclidean).is_none());
    }

    #[test]
    fn noise_objects_are_ignored() {
        let data = two_blobs();
        let with_noise =
            Partition::from_optional_ids(&[Some(0), Some(0), None, Some(1), Some(1), None]);
        let s = silhouette_coefficient(&data, &with_noise, &Euclidean).unwrap();
        assert!(s > 0.9);
    }

    #[test]
    fn pairwise_variant_is_bit_identical() {
        let data = two_blobs();
        let dist = cvcp_data::distance::pairwise_matrix(&data, &Euclidean);
        for ids in [
            vec![0, 0, 0, 1, 1, 1],
            vec![0, 1, 0, 1, 0, 1],
            vec![0, 0, 1, 1, 2, 2],
        ] {
            let p = Partition::from_cluster_ids(&ids);
            assert_eq!(
                silhouette_coefficient(&data, &p, &Euclidean),
                silhouette_from_pairwise(&dist, &p),
                "ids {ids:?}"
            );
        }
    }

    #[test]
    fn singleton_cluster_contributes_zero() {
        let data = DataMatrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0]]);
        let p = Partition::from_cluster_ids(&[0, 0, 1]);
        let s = silhouette_coefficient(&data, &p, &Euclidean).unwrap();
        // two objects with s ~ 1, singleton contributes 0 -> mean ~ 2/3
        assert!(s > 0.6 && s < 0.7, "s = {s}");
    }

    #[test]
    fn splitting_a_tight_cluster_hurts() {
        let data = two_blobs();
        let k2 = Partition::from_cluster_ids(&[0, 0, 0, 1, 1, 1]);
        let k3 = Partition::from_cluster_ids(&[0, 2, 0, 1, 1, 1]);
        assert!(
            silhouette_coefficient(&data, &k2, &Euclidean).unwrap()
                > silhouette_coefficient(&data, &k3, &Euclidean).unwrap()
        );
    }

    #[test]
    fn bounds_hold() {
        let data = two_blobs();
        for ids in [[0, 0, 1, 1, 0, 1], [0, 1, 2, 0, 1, 2], [1, 1, 1, 0, 0, 0]] {
            let p = Partition::from_cluster_ids(&ids);
            let s = silhouette_coefficient(&data, &p, &Euclidean).unwrap();
            assert!((-1.0..=1.0).contains(&s));
        }
    }
}
