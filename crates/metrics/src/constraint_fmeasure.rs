//! The internal classification F-measure of the CVCP framework.
//!
//! Section 3.2 of the paper: a clustering partition is viewed as a binary
//! classifier over constraints — must-link constraints form class 1 and
//! cannot-link constraints form class 0.  A must-link constraint is
//! "recognised" when both objects are placed in the same (non-noise) cluster,
//! a cannot-link constraint when they are not.  Precision, recall and the
//! F-measure are computed per class and the *average F-measure of the two
//! classes* is the quality score of the partition with respect to the test
//! constraints.

use cvcp_constraints::{ConstraintKind, ConstraintSet};
use cvcp_data::Partition;

/// Precision/recall/F for one of the two constraint classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassScores {
    /// True positives (constraints of this class predicted as this class).
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// Precision (1.0 when there are no predictions of this class).
    pub precision: f64,
    /// Recall (1.0 when the class is empty).
    pub recall: f64,
    /// F1 measure (harmonic mean of precision and recall).
    pub f1: f64,
}

impl ClassScores {
    fn from_counts(tp: usize, fp: usize, fn_: usize) -> Self {
        // Conventions for empty denominators: a class with no predicted
        // members has precision 1 (no wrong predictions were made); a class
        // with no actual members has recall 1.  With both, F1 is 1.
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            tp,
            fp,
            fn_,
            precision,
            recall,
            f1,
        }
    }
}

/// Full report of the constraint-classification evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryReport {
    /// Scores for the must-link class (class 1).
    pub must_link: ClassScores,
    /// Scores for the cannot-link class (class 0).
    pub cannot_link: ClassScores,
    /// Average of the two per-class F-measures — the paper's internal score.
    pub average_f1: f64,
    /// Fraction of constraints satisfied (accuracy over constraints).
    pub accuracy: f64,
    /// Number of constraints evaluated.
    pub n_constraints: usize,
}

/// Computes the full constraint-classification report for `partition` with
/// respect to `constraints`.
///
/// A pair is "predicted must-link" iff both objects are assigned to the same
/// non-noise cluster; noise objects therefore never satisfy a must-link but
/// always satisfy a cannot-link — matching the semantics of FOSC, where an
/// object left as noise is not grouped with anything.
///
/// Returns a report with `average_f1 = 0.0` and `n_constraints = 0` when the
/// constraint set is empty (callers typically skip such folds).
pub fn constraint_classification_report(
    partition: &Partition,
    constraints: &ConstraintSet,
) -> BinaryReport {
    // Counts from the perspective of the must-link class (positive class).
    let mut tp_ml = 0usize; // must-link, same cluster
    let mut fn_ml = 0usize; // must-link, different clusters
    let mut tp_cl = 0usize; // cannot-link, different clusters
    let mut fn_cl = 0usize; // cannot-link, same cluster

    for c in constraints.iter() {
        let same = partition.same_cluster(c.a, c.b);
        match c.kind {
            ConstraintKind::MustLink => {
                if same {
                    tp_ml += 1;
                } else {
                    fn_ml += 1;
                }
            }
            ConstraintKind::CannotLink => {
                if same {
                    fn_cl += 1;
                } else {
                    tp_cl += 1;
                }
            }
        }
    }

    // False positives of one class are the false negatives of the other:
    // a cannot-link pair predicted "same cluster" is a false positive for the
    // must-link class, and vice versa.
    let must_link = ClassScores::from_counts(tp_ml, fn_cl, fn_ml);
    let cannot_link = ClassScores::from_counts(tp_cl, fn_ml, fn_cl);

    let n_constraints = constraints.len();
    let (average_f1, accuracy) = if n_constraints == 0 {
        (0.0, 0.0)
    } else {
        (
            0.5 * (must_link.f1 + cannot_link.f1),
            (tp_ml + tp_cl) as f64 / n_constraints as f64,
        )
    };

    BinaryReport {
        must_link,
        cannot_link,
        average_f1,
        accuracy,
        n_constraints,
    }
}

/// The paper's internal score: the average of the must-link and cannot-link
/// F-measures of `partition` with respect to `constraints`.
///
/// Returns `0.0` for an empty constraint set.
pub fn constraint_fmeasure(partition: &Partition, constraints: &ConstraintSet) -> f64 {
    constraint_classification_report(partition, constraints).average_f1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn constraints_from(pairs: &[(usize, usize, bool)], n: usize) -> ConstraintSet {
        let mut set = ConstraintSet::new(n);
        for &(a, b, must) in pairs {
            if must {
                set.add_must_link(a, b);
            } else {
                set.add_cannot_link(a, b);
            }
        }
        set
    }

    #[test]
    fn perfect_partition_scores_one() {
        // objects 0,1 in cluster 0; 2,3 in cluster 1
        let p = Partition::from_cluster_ids(&[0, 0, 1, 1]);
        let cs = constraints_from(
            &[(0, 1, true), (2, 3, true), (0, 2, false), (1, 3, false)],
            4,
        );
        let report = constraint_classification_report(&p, &cs);
        assert_eq!(report.average_f1, 1.0);
        assert_eq!(report.accuracy, 1.0);
        assert_eq!(report.must_link.tp, 2);
        assert_eq!(report.cannot_link.tp, 2);
    }

    #[test]
    fn completely_wrong_partition_scores_zero() {
        // all constraints violated: must-links split, cannot-links merged
        let p = Partition::from_cluster_ids(&[0, 1, 0, 1]);
        let cs = constraints_from(
            &[(0, 1, true), (2, 3, true), (0, 2, false), (1, 3, false)],
            4,
        );
        let report = constraint_classification_report(&p, &cs);
        assert_eq!(report.accuracy, 0.0);
        assert_eq!(report.average_f1, 0.0);
    }

    #[test]
    fn all_in_one_cluster_satisfies_only_must_links() {
        let p = Partition::from_cluster_ids(&[0, 0, 0, 0]);
        let cs = constraints_from(
            &[(0, 1, true), (2, 3, true), (0, 2, false), (1, 3, false)],
            4,
        );
        let report = constraint_classification_report(&p, &cs);
        assert_eq!(report.must_link.recall, 1.0);
        assert_eq!(report.must_link.precision, 0.5);
        assert_eq!(report.cannot_link.recall, 0.0);
        assert!((report.accuracy - 0.5).abs() < 1e-12);
        assert!(report.average_f1 > 0.0 && report.average_f1 < 1.0);
    }

    #[test]
    fn noise_objects_never_satisfy_must_links() {
        let p = Partition::from_optional_ids(&[Some(0), None, Some(0), None]);
        let cs = constraints_from(&[(0, 1, true), (1, 3, false)], 4);
        let report = constraint_classification_report(&p, &cs);
        // must-link(0,1) violated because 1 is noise
        assert_eq!(report.must_link.tp, 0);
        // cannot-link(1,3) satisfied: two noise objects are not in the same cluster
        assert_eq!(report.cannot_link.tp, 1);
    }

    #[test]
    fn empty_constraint_set_scores_zero() {
        let p = Partition::from_cluster_ids(&[0, 1]);
        let cs = ConstraintSet::new(2);
        let report = constraint_classification_report(&p, &cs);
        assert_eq!(report.average_f1, 0.0);
        assert_eq!(report.n_constraints, 0);
    }

    #[test]
    fn single_class_of_constraints_uses_degenerate_conventions() {
        // Only must-link constraints present, all satisfied: both class F
        // values are 1 (cannot-link class is empty: recall convention 1,
        // precision 1 because nothing was predicted cannot-link *for a
        // cannot-link constraint*).
        let p = Partition::from_cluster_ids(&[0, 0, 0]);
        let cs = constraints_from(&[(0, 1, true), (1, 2, true)], 3);
        let report = constraint_classification_report(&p, &cs);
        assert_eq!(report.must_link.f1, 1.0);
        assert_eq!(report.cannot_link.f1, 1.0);
        assert_eq!(report.average_f1, 1.0);
    }

    #[test]
    fn fmeasure_shortcut_matches_report() {
        let p = Partition::from_cluster_ids(&[0, 0, 1, 1, 2]);
        let cs = constraints_from(
            &[
                (0, 1, true),
                (0, 4, false),
                (2, 3, true),
                (1, 2, false),
                (3, 4, false),
            ],
            5,
        );
        assert_eq!(
            constraint_fmeasure(&p, &cs),
            constraint_classification_report(&p, &cs).average_f1
        );
    }

    #[test]
    fn better_partition_scores_higher() {
        let cs = constraints_from(
            &[
                (0, 1, true),
                (2, 3, true),
                (4, 5, true),
                (0, 3, false),
                (1, 4, false),
                (2, 5, false),
            ],
            6,
        );
        let good = Partition::from_cluster_ids(&[0, 0, 1, 1, 2, 2]);
        let medium = Partition::from_cluster_ids(&[0, 0, 1, 1, 1, 1]);
        let bad = Partition::from_cluster_ids(&[0, 1, 2, 0, 1, 2]);
        let s_good = constraint_fmeasure(&good, &cs);
        let s_medium = constraint_fmeasure(&medium, &cs);
        let s_bad = constraint_fmeasure(&bad, &cs);
        assert!(s_good > s_medium, "{s_good} vs {s_medium}");
        assert!(s_medium > s_bad, "{s_medium} vs {s_bad}");
    }

    proptest! {
        /// The score is always within [0, 1] and equals 1 when the partition
        /// is derived from the same labels as the constraints.
        #[test]
        fn prop_score_bounds_and_perfection(
            n in 4usize..40,
            k in 2usize..5,
            seed in 0u64..200,
        ) {
            use cvcp_data::rng::SeededRng;
            use cvcp_constraints::generate::constraint_pool;
            let gt: Vec<usize> = (0..n).map(|i| i % k).collect();
            let mut rng = SeededRng::new(seed);
            let pool = constraint_pool(&gt, 0.8, 2, &mut rng);
            prop_assume!(!pool.is_empty());

            // Perfect partition: exactly the ground truth.
            let perfect = Partition::from_cluster_ids(&gt);
            prop_assert!((constraint_fmeasure(&perfect, &pool) - 1.0).abs() < 1e-12);

            // Arbitrary partition: bounded score.
            let arbitrary = Partition::from_cluster_ids(
                &(0..n).map(|i| (i * 7 + 3) % 2).collect::<Vec<_>>(),
            );
            let s = constraint_fmeasure(&arbitrary, &pool);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        /// Per-class precision/recall/F are always within [0, 1].
        #[test]
        fn prop_class_scores_bounded(
            assignments in proptest::collection::vec(proptest::option::of(0usize..4), 6..30),
            seed in 0u64..100,
        ) {
            use cvcp_data::rng::SeededRng;
            let n = assignments.len();
            let mut rng = SeededRng::new(seed);
            let mut cs = ConstraintSet::new(n);
            for _ in 0..20 {
                let a = rng.index(n);
                let b = rng.index(n);
                if a != b {
                    if rng.bernoulli(0.5) {
                        cs.add_must_link(a, b);
                    } else {
                        cs.add_cannot_link(a, b);
                    }
                }
            }
            let p = Partition::from_optional_ids(&assignments);
            let r = constraint_classification_report(&p, &cs);
            for scores in [r.must_link, r.cannot_link] {
                prop_assert!((0.0..=1.0).contains(&scores.precision));
                prop_assert!((0.0..=1.0).contains(&scores.recall));
                prop_assert!((0.0..=1.0).contains(&scores.f1));
            }
            prop_assert!((0.0..=1.0).contains(&r.average_f1));
            prop_assert!((0.0..=1.0).contains(&r.accuracy));
        }
    }
}
