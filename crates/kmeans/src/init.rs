//! Centroid initialisation strategies.
//!
//! * [`random_centroids`]: `k` distinct data points chosen uniformly;
//! * [`kmeanspp_centroids`]: the k-means++ D² seeding of Arthur &
//!   Vassilvitskii (2007);
//! * [`neighborhood_centroids`]: the MPCKMeans initialisation of Bilenko et
//!   al. (2004): the must-link neighbourhood sets (transitive closure of the
//!   must-link constraints) provide initial centroids; if there are fewer
//!   neighbourhoods than `k`, the remaining centroids are filled with
//!   k-means++ style draws; if there are more, the `k` largest (by weighted
//!   farthest-first traversal) are used.

use crate::objective::{centroid_of, sq_dist};
use cvcp_constraints::closure::must_link_components;
use cvcp_constraints::ConstraintSet;
use cvcp_data::rng::SeededRng;
use cvcp_data::DataMatrix;

/// Picks `k` distinct rows of `data` uniformly at random as centroids.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of rows.
pub fn random_centroids(data: &DataMatrix, k: usize, rng: &mut SeededRng) -> Vec<Vec<f64>> {
    assert!(
        k >= 1 && k <= data.n_rows(),
        "invalid k = {k} for {} rows",
        data.n_rows()
    );
    rng.sample_indices(data.n_rows(), k)
        .into_iter()
        .map(|i| data.row(i).to_vec())
        .collect()
}

/// k-means++ (D²) seeding.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of rows.
#[allow(clippy::needless_range_loop)] // dist2[i] updates in lock-step with data.row(i)
pub fn kmeanspp_centroids(data: &DataMatrix, k: usize, rng: &mut SeededRng) -> Vec<Vec<f64>> {
    assert!(
        k >= 1 && k <= data.n_rows(),
        "invalid k = {k} for {} rows",
        data.n_rows()
    );
    let n = data.n_rows();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data.row(rng.index(n)).to_vec());

    let mut dist2 = vec![0.0f64; n];
    while centroids.len() < k {
        let last = centroids.last().expect("at least one centroid");
        let mut total = 0.0;
        for i in 0..n {
            let d = sq_dist(data.row(i), last);
            if centroids.len() == 1 || d < dist2[i] {
                dist2[i] = d;
            }
            total += dist2[i];
        }
        let next = if total <= f64::EPSILON {
            // All points coincide with existing centroids; pick at random.
            rng.index(n)
        } else {
            let mut target = rng.uniform() * total;
            let mut chosen = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(data.row(next).to_vec());
    }
    centroids
}

/// The fold-invariant part of the MPCKMeans initialisation: the centroid and
/// size of every must-link neighbourhood (connected component of the
/// must-link graph).
///
/// These candidates depend only on the data and the constraint realisation —
/// not on `k` — so one computation serves the whole parameter sweep of a
/// cross-validation fold (they are cached behind
/// `ArtifactKey::MpckSeeding` by the cache-aware clustering path).
pub fn neighborhood_candidates(
    data: &DataMatrix,
    constraints: &ConstraintSet,
) -> Vec<(Vec<f64>, usize)> {
    must_link_components(constraints)
        .iter()
        .map(|members| (centroid_of(data, members), members.len()))
        .collect()
}

/// MPCKMeans-style initialisation from must-link neighbourhoods.
///
/// Returns `k` centroids.  Ties in the farthest-first traversal are broken by
/// neighbourhood size (larger neighbourhoods preferred), matching the
/// "weighted" variant described by Bilenko et al.
pub fn neighborhood_centroids(
    data: &DataMatrix,
    constraints: &ConstraintSet,
    k: usize,
    rng: &mut SeededRng,
) -> Vec<Vec<f64>> {
    centroids_from_candidates(data, neighborhood_candidates(data, constraints), k, rng)
}

/// Selects `k` centroids from precomputed neighbourhood candidates (see
/// [`neighborhood_candidates`]); bit-identical to [`neighborhood_centroids`]
/// on the same inputs.
#[allow(clippy::needless_range_loop)] // dist2[i] updates in lock-step with data.row(i)
pub fn centroids_from_candidates(
    data: &DataMatrix,
    mut candidates: Vec<(Vec<f64>, usize)>,
    k: usize,
    rng: &mut SeededRng,
) -> Vec<Vec<f64>> {
    assert!(
        k >= 1 && k <= data.n_rows(),
        "invalid k = {k} for {} rows",
        data.n_rows()
    );
    if candidates.is_empty() {
        return kmeanspp_centroids(data, k, rng);
    }

    if candidates.len() <= k {
        let mut centroids: Vec<Vec<f64>> = candidates.into_iter().map(|(c, _)| c).collect();
        // Fill the rest with k-means++ draws conditioned on existing centroids.
        let n = data.n_rows();
        let mut dist2: Vec<f64> = (0..n)
            .map(|i| {
                centroids
                    .iter()
                    .map(|c| sq_dist(data.row(i), c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        while centroids.len() < k {
            let total: f64 = dist2.iter().sum();
            let next = if total <= f64::EPSILON {
                rng.index(n)
            } else {
                let mut target = rng.uniform() * total;
                let mut chosen = n - 1;
                for (i, &d) in dist2.iter().enumerate() {
                    target -= d;
                    if target <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            centroids.push(data.row(next).to_vec());
            for i in 0..n {
                let d = sq_dist(data.row(i), data.row(next));
                if d < dist2[i] {
                    dist2[i] = d;
                }
            }
        }
        return centroids;
    }

    // More neighbourhoods than clusters: weighted farthest-first traversal.
    // Start from the largest neighbourhood.
    candidates.sort_by_key(|c| std::cmp::Reverse(c.1));
    let mut chosen: Vec<(Vec<f64>, usize)> = vec![candidates.remove(0)];
    while chosen.len() < k {
        // pick the candidate maximising (min distance to chosen) * size
        let (best_idx, _) = candidates
            .iter()
            .enumerate()
            .map(|(idx, (c, size))| {
                let min_d = chosen
                    .iter()
                    .map(|(cc, _)| sq_dist(c, cc))
                    .fold(f64::INFINITY, f64::min);
                (idx, min_d * *size as f64)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
            .expect("candidates non-empty");
        chosen.push(candidates.remove(best_idx));
    }
    chosen.into_iter().map(|(c, _)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data() -> DataMatrix {
        DataMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.2],
            vec![10.0, 10.0],
            vec![10.2, 10.1],
            vec![10.1, 10.2],
            vec![20.0, 0.0],
            vec![20.1, 0.2],
        ])
    }

    #[test]
    fn random_centroids_are_data_points() {
        let data = blob_data();
        let mut rng = SeededRng::new(1);
        let cs = random_centroids(&data, 3, &mut rng);
        assert_eq!(cs.len(), 3);
        for c in &cs {
            assert!((0..data.n_rows()).any(|i| data.row(i) == c.as_slice()));
        }
    }

    #[test]
    fn kmeanspp_spreads_centroids() {
        let data = blob_data();
        let mut rng = SeededRng::new(2);
        let cs = kmeanspp_centroids(&data, 3, &mut rng);
        assert_eq!(cs.len(), 3);
        // The three centroids should be in three different blobs most of the
        // time; check that pairwise distances are large.
        let mut min_pair = f64::INFINITY;
        for i in 0..3 {
            for j in (i + 1)..3 {
                min_pair = min_pair.min(sq_dist(&cs[i], &cs[j]));
            }
        }
        assert!(min_pair > 1.0, "centroids too close: {min_pair}");
    }

    #[test]
    fn kmeanspp_handles_duplicate_points() {
        let data = DataMatrix::from_rows(&vec![vec![1.0, 1.0]; 5]);
        let mut rng = SeededRng::new(3);
        let cs = kmeanspp_centroids(&data, 3, &mut rng);
        assert_eq!(cs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid k")]
    fn kmeanspp_rejects_k_too_large() {
        let data = blob_data();
        let mut rng = SeededRng::new(3);
        let _ = kmeanspp_centroids(&data, 99, &mut rng);
    }

    #[test]
    fn neighborhood_centroids_uses_must_link_groups() {
        let data = blob_data();
        // Must-link the first blob's points together and the second blob's.
        let mut cs = ConstraintSet::new(8);
        cs.add_must_link(0, 1);
        cs.add_must_link(1, 2);
        cs.add_must_link(3, 4);
        cs.add_must_link(4, 5);
        let mut rng = SeededRng::new(4);
        let centroids = neighborhood_centroids(&data, &cs, 3, &mut rng);
        assert_eq!(centroids.len(), 3);
        // the two neighbourhood centroids must be close to the blob means
        let blob0 = [0.1, 0.1];
        let blob1 = [10.1, 10.1];
        assert!(centroids.iter().any(|c| sq_dist(c, &blob0) < 0.1));
        assert!(centroids.iter().any(|c| sq_dist(c, &blob1) < 0.1));
    }

    #[test]
    fn neighborhood_centroids_truncates_when_too_many_groups() {
        let data = blob_data();
        let mut cs = ConstraintSet::new(8);
        cs.add_must_link(0, 1);
        cs.add_must_link(3, 4);
        cs.add_must_link(6, 7);
        let mut rng = SeededRng::new(5);
        let centroids = neighborhood_centroids(&data, &cs, 2, &mut rng);
        assert_eq!(centroids.len(), 2);
        // farthest-first should not pick two centroids from the same blob
        assert!(sq_dist(&centroids[0], &centroids[1]) > 5.0);
    }

    #[test]
    fn neighborhood_centroids_without_must_links_falls_back() {
        let data = blob_data();
        let cs = ConstraintSet::new(8);
        let mut rng = SeededRng::new(6);
        let centroids = neighborhood_centroids(&data, &cs, 3, &mut rng);
        assert_eq!(centroids.len(), 3);
    }
}
