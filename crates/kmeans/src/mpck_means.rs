//! MPCKMeans — Metric Pairwise Constrained K-Means (Bilenko, Basu & Mooney,
//! ICML 2004).
//!
//! The semi-supervised partitional clustering algorithm evaluated by the CVCP
//! paper.  It integrates constraints and metric learning in an EM-style loop:
//!
//! * **Initialisation**: cluster centroids are seeded from the must-link
//!   neighbourhood sets (transitive closure of the must-links), topped up /
//!   reduced via weighted farthest-first traversal
//!   ([`crate::init::neighborhood_centroids`]).
//! * **E-step**: objects are assigned greedily, in random order, to the
//!   cluster minimising their contribution to the objective: the metric
//!   distance to the centroid, minus the metric's log-determinant, plus
//!   penalties for must-link / cannot-link violations with respect to the
//!   objects assigned earlier in the pass.
//! * **M-step**: centroids are recomputed, and each cluster's *diagonal*
//!   Mahalanobis metric `A_h` is re-estimated from the within-cluster scatter
//!   plus the scatter of violated constraints involving that cluster.
//!
//! The objective minimised is
//!
//! ```text
//!   Σ_x ( ‖x − μ_{l_x}‖²_{A_{l_x}} − log det A_{l_x} )
//! + Σ_{(i,j)∈ML, l_i≠l_j} w  · ½ ( f_ML^{A_{l_i}}(i,j) + f_ML^{A_{l_j}}(i,j) )
//! + Σ_{(i,j)∈CL, l_i=l_j} w̄ · f_CL^{A_{l_i}}(i,j)
//! ```
//!
//! with `f_ML(i,j) = ‖x_i − x_j‖²_A` and
//! `f_CL(i,j) = d_max²_A − ‖x_i − x_j‖²_A` (violating a cannot-link between
//! close objects is penalised more).

use crate::init::{centroids_from_candidates, neighborhood_candidates};
use crate::objective::{recompute_centroids, weighted_sq_dist};
use cvcp_constraints::closure::transitive_closure;
use cvcp_constraints::{Constraint, ConstraintKind, ConstraintSet};
use cvcp_data::rng::SeededRng;
use cvcp_data::{DataMatrix, Partition};
use cvcp_engine::ArtifactSize;

/// The `k`-invariant seeding structures of an MPCKMeans run: the (optionally
/// transitively closed) working constraint set and the must-link
/// neighbourhood centroid candidates.
///
/// Both depend only on the data and the constraint realisation, so one
/// seeding serves every cluster count of a parameter sweep — this is the
/// artifact the engine's cache shares across the CVCP grid (keyed by
/// `ArtifactKey::MpckSeeding`).
#[derive(Debug, Clone, PartialEq)]
pub struct MpckSeeding {
    /// The working constraint set (the transitive closure of the input when
    /// `use_closure` was requested, the input itself otherwise).
    pub working: ConstraintSet,
    /// Must-link neighbourhood centroids and sizes
    /// (see [`neighborhood_candidates`]).
    pub candidates: Vec<(Vec<f64>, usize)>,
}

impl MpckSeeding {
    /// Computes the seeding structures for `data` and `constraints`.
    ///
    /// `use_closure` must match the [`MpckMeans::use_closure`] flag of the
    /// configuration the seeding will be used with.
    pub fn compute(data: &DataMatrix, constraints: &ConstraintSet, use_closure: bool) -> Self {
        let working = if use_closure {
            transitive_closure(constraints)
        } else {
            constraints.clone()
        };
        let candidates = neighborhood_candidates(data, &working);
        Self {
            working,
            candidates,
        }
    }
}

impl ArtifactSize for MpckSeeding {
    fn artifact_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.working.len() * std::mem::size_of::<Constraint>()
            + self
                .candidates
                .iter()
                .map(|(centroid, _)| std::mem::size_of::<(Vec<f64>, usize)>() + centroid.len() * 8)
                .sum::<usize>()
    }
}

/// Configuration for MPCKMeans.
#[derive(Debug, Clone)]
pub struct MpckMeans {
    /// Number of clusters (the parameter CVCP selects).
    pub k: usize,
    /// Weight `w` of a must-link violation.
    pub must_link_weight: f64,
    /// Weight `w̄` of a cannot-link violation.
    pub cannot_link_weight: f64,
    /// Maximum number of EM iterations.
    pub max_iter: usize,
    /// Whether per-cluster diagonal metrics are learned (disable to obtain
    /// PCKMeans behaviour).
    pub learn_metric: bool,
    /// Lower clamp applied to learned metric weights (numerical safety).
    pub min_weight: f64,
    /// Upper clamp applied to learned metric weights.
    pub max_weight: f64,
    /// Whether to take the transitive closure of the must-link constraints
    /// before clustering (the original algorithm does).
    pub use_closure: bool,
}

/// Result of an MPCKMeans run.
#[derive(Debug, Clone)]
pub struct MpckMeansResult {
    /// Final cluster assignment (no noise objects).
    pub partition: Partition,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Final per-cluster diagonal metric weights.
    pub metrics: Vec<Vec<f64>>,
    /// Final objective value.
    pub objective: f64,
    /// Number of EM iterations executed.
    pub iterations: usize,
    /// Number of constraint violations in the final assignment.
    pub violations: usize,
}

impl MpckMeans {
    /// Creates an MPCKMeans configuration with the defaults used throughout
    /// the suite's experiments: violation weights 1, at most 50 EM
    /// iterations, metric learning enabled.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            must_link_weight: 1.0,
            cannot_link_weight: 1.0,
            max_iter: 50,
            learn_metric: true,
            min_weight: 1e-3,
            max_weight: 1e3,
            use_closure: true,
        }
    }

    /// Sets the constraint-violation weights.
    pub fn with_weights(mut self, must_link: f64, cannot_link: f64) -> Self {
        self.must_link_weight = must_link;
        self.cannot_link_weight = cannot_link;
        self
    }

    /// Enables or disables metric learning.
    pub fn with_metric_learning(mut self, enabled: bool) -> Self {
        self.learn_metric = enabled;
        self
    }

    /// Sets the maximum number of EM iterations.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// Runs MPCKMeans on `data` with the given constraints.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or larger than the number of objects.
    pub fn fit(
        &self,
        data: &DataMatrix,
        constraints: &ConstraintSet,
        rng: &mut SeededRng,
    ) -> MpckMeansResult {
        let seeding = MpckSeeding::compute(data, constraints, self.use_closure);
        self.fit_seeded(data, &seeding, rng)
    }

    /// Runs MPCKMeans on precomputed seeding structures — **bit-identical**
    /// to [`Self::fit`] when `seeding` was computed from the same data and
    /// constraints with a matching `use_closure` flag.  This is the entry
    /// point of the cache-aware path: one [`MpckSeeding`] is shared by every
    /// `k` of a parameter sweep.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or larger than the number of objects.
    pub fn fit_seeded(
        &self,
        data: &DataMatrix,
        seeding: &MpckSeeding,
        rng: &mut SeededRng,
    ) -> MpckMeansResult {
        let n = data.n_rows();
        let dims = data.n_cols();
        assert!(
            self.k >= 1 && self.k <= n,
            "k = {} invalid for {n} objects",
            self.k
        );

        let working = &seeding.working;
        // Index constraints per object for the greedy assignment step.
        let mut ml_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut cl_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut ml_pairs: Vec<(usize, usize)> = Vec::new();
        let mut cl_pairs: Vec<(usize, usize)> = Vec::new();
        for c in working.iter() {
            match c.kind {
                ConstraintKind::MustLink => {
                    ml_of[c.a].push(c.b);
                    ml_of[c.b].push(c.a);
                    ml_pairs.push((c.a, c.b));
                }
                ConstraintKind::CannotLink => {
                    cl_of[c.a].push(c.b);
                    cl_of[c.b].push(c.a);
                    cl_pairs.push((c.a, c.b));
                }
            }
        }

        let mut centroids =
            centroids_from_candidates(data, seeding.candidates.clone(), self.k, rng);
        let mut metrics: Vec<Vec<f64>> = vec![vec![1.0; dims]; self.k];
        let mut assignment: Vec<usize> = vec![0; n];
        let mut objective = f64::INFINITY;
        let mut iterations = 0;

        // Maximum squared pairwise distance per metric is expensive to track
        // exactly; we use the squared diameter of the data bounding box under
        // the current metric as the f_CL offset, which preserves the "close
        // violated cannot-links cost more" behaviour.
        let (mins, maxs) = data.column_min_max();
        let diameter_sq = |weights: &[f64]| -> f64 {
            mins.iter()
                .zip(&maxs)
                .zip(weights)
                .map(|((lo, hi), w)| {
                    let d = hi - lo;
                    w * d * d
                })
                .sum()
        };

        for it in 0..self.max_iter {
            iterations = it + 1;

            // ---------------- E-step: greedy ordered assignment ----------------
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            let mut assigned: Vec<Option<usize>> = vec![None; n];
            for &i in &order {
                let row = data.row(i);
                let mut best_c = 0usize;
                let mut best_cost = f64::INFINITY;
                for c in 0..self.k {
                    let w = &metrics[c];
                    let mut cost = weighted_sq_dist(row, &centroids[c], w) - log_det(w);
                    // must-link violations w.r.t. already-assigned neighbours
                    for &j in &ml_of[i] {
                        if let Some(cj) = assigned[j] {
                            if cj != c {
                                let f_here = weighted_sq_dist(row, data.row(j), w);
                                let f_there = weighted_sq_dist(row, data.row(j), &metrics[cj]);
                                cost += self.must_link_weight * 0.5 * (f_here + f_there);
                            }
                        }
                    }
                    // cannot-link violations
                    for &j in &cl_of[i] {
                        if let Some(cj) = assigned[j] {
                            if cj == c {
                                let f = diameter_sq(w) - weighted_sq_dist(row, data.row(j), w);
                                cost += self.cannot_link_weight * f.max(0.0);
                            }
                        }
                    }
                    if cost < best_cost {
                        best_cost = cost;
                        best_c = c;
                    }
                }
                assigned[i] = Some(best_c);
            }
            let new_assignment: Vec<usize> =
                assigned.into_iter().map(|a| a.expect("assigned")).collect();

            // Re-seed empty clusters with the point farthest from its centroid.
            let mut final_assignment = new_assignment;
            for c in 0..self.k {
                if !final_assignment.contains(&c) {
                    let (far, _) = (0..n)
                        .map(|i| {
                            (
                                i,
                                weighted_sq_dist(
                                    data.row(i),
                                    &centroids[final_assignment[i]],
                                    &metrics[final_assignment[i]],
                                ),
                            )
                        })
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                        .expect("non-empty data");
                    final_assignment[far] = c;
                }
            }

            // ---------------- M-step: centroids ----------------
            recompute_centroids(data, &final_assignment, &mut centroids);

            // ---------------- M-step: metrics ----------------
            if self.learn_metric {
                self.update_metrics(
                    data,
                    &final_assignment,
                    &centroids,
                    &ml_pairs,
                    &cl_pairs,
                    &mins,
                    &maxs,
                    &mut metrics,
                );
            }

            // ---------------- Objective & convergence ----------------
            let new_objective = self.objective(
                data,
                &final_assignment,
                &centroids,
                &metrics,
                &ml_pairs,
                &cl_pairs,
                &diameter_sq,
            );
            let converged = final_assignment == assignment
                || (objective - new_objective).abs() <= 1e-9 * objective.abs().max(1.0);
            assignment = final_assignment;
            objective = new_objective;
            if converged && it > 0 {
                break;
            }
        }

        let violations = ml_pairs
            .iter()
            .filter(|&&(a, b)| assignment[a] != assignment[b])
            .count()
            + cl_pairs
                .iter()
                .filter(|&&(a, b)| assignment[a] == assignment[b])
                .count();

        MpckMeansResult {
            partition: Partition::from_cluster_ids(&assignment),
            centroids,
            metrics,
            objective,
            iterations,
            violations,
        }
    }

    /// Re-estimates the per-cluster diagonal metric weights.
    ///
    /// For cluster `h` and dimension `d`:
    /// `a_{h,d} = N_h / ( Σ_{x∈h}(x_d−μ_d)² + ½ w Σ_{violated ML touching h}(x_i,d−x_j,d)²
    ///                   + w̄ Σ_{violated CL inside h} (range_d² − (x_i,d−x_j,d)²) )`,
    /// clamped to `[min_weight, max_weight]`.
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::needless_range_loop)] // per-dimension scatter accumulation
    fn update_metrics(
        &self,
        data: &DataMatrix,
        assignment: &[usize],
        centroids: &[Vec<f64>],
        ml_pairs: &[(usize, usize)],
        cl_pairs: &[(usize, usize)],
        mins: &[f64],
        maxs: &[f64],
        metrics: &mut [Vec<f64>],
    ) {
        let dims = data.n_cols();
        let k = centroids.len();
        let mut scatter = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0usize; k];

        for (i, &c) in assignment.iter().enumerate() {
            counts[c] += 1;
            let row = data.row(i);
            for d in 0..dims {
                let diff = row[d] - centroids[c][d];
                scatter[c][d] += diff * diff;
            }
        }
        // Violated must-links contribute half their scatter to both clusters.
        for &(a, b) in ml_pairs {
            let (ca, cb) = (assignment[a], assignment[b]);
            if ca != cb {
                for d in 0..dims {
                    let diff = data.get(a, d) - data.get(b, d);
                    let v = 0.5 * self.must_link_weight * diff * diff;
                    scatter[ca][d] += v;
                    scatter[cb][d] += v;
                }
            }
        }
        // Violated cannot-links contribute (range² − diff²) to their cluster.
        for &(a, b) in cl_pairs {
            let (ca, cb) = (assignment[a], assignment[b]);
            if ca == cb {
                for d in 0..dims {
                    let diff = data.get(a, d) - data.get(b, d);
                    let range = maxs[d] - mins[d];
                    let v = self.cannot_link_weight * (range * range - diff * diff).max(0.0);
                    scatter[ca][d] += v;
                }
            }
        }

        for c in 0..k {
            if counts[c] == 0 {
                continue;
            }
            for d in 0..dims {
                let denom = scatter[c][d].max(1e-12);
                metrics[c][d] = (counts[c] as f64 / denom).clamp(self.min_weight, self.max_weight);
            }
        }
    }

    /// Evaluates the full MPCKMeans objective for a given state.
    #[allow(clippy::too_many_arguments)]
    fn objective<F: Fn(&[f64]) -> f64>(
        &self,
        data: &DataMatrix,
        assignment: &[usize],
        centroids: &[Vec<f64>],
        metrics: &[Vec<f64>],
        ml_pairs: &[(usize, usize)],
        cl_pairs: &[(usize, usize)],
        diameter_sq: &F,
    ) -> f64 {
        let mut obj = 0.0;
        for (i, &c) in assignment.iter().enumerate() {
            obj += weighted_sq_dist(data.row(i), &centroids[c], &metrics[c]) - log_det(&metrics[c]);
        }
        for &(a, b) in ml_pairs {
            let (ca, cb) = (assignment[a], assignment[b]);
            if ca != cb {
                let f = 0.5
                    * (weighted_sq_dist(data.row(a), data.row(b), &metrics[ca])
                        + weighted_sq_dist(data.row(a), data.row(b), &metrics[cb]));
                obj += self.must_link_weight * f;
            }
        }
        for &(a, b) in cl_pairs {
            let (ca, cb) = (assignment[a], assignment[b]);
            if ca == cb {
                let f = diameter_sq(&metrics[ca])
                    - weighted_sq_dist(data.row(a), data.row(b), &metrics[ca]);
                obj += self.cannot_link_weight * f.max(0.0);
            }
        }
        obj
    }
}

/// Sum of log weights (log-determinant of the diagonal metric).
fn log_det(weights: &[f64]) -> f64 {
    weights.iter().map(|w| w.max(1e-12).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_constraints::generate::constraint_pool;
    use cvcp_data::synthetic::{gaussian_mixture, separated_blobs, ClusterSpec};
    use cvcp_metrics::{adjusted_rand_index, constraint_fmeasure};

    #[test]
    fn recovers_separated_blobs_without_constraints() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 25, 4, 10.0, &mut rng);
        let result = MpckMeans::new(3).fit(ds.matrix(), &ConstraintSet::new(ds.len()), &mut rng);
        let ari = adjusted_rand_index(&result.partition, ds.labels());
        assert!(ari > 0.9, "ARI = {ari}");
        assert_eq!(result.partition.n_noise(), 0);
        assert_eq!(result.violations, 0);
    }

    #[test]
    fn constraints_improve_overlapping_clusters() {
        // Two overlapping clusters: constraints should push the solution
        // towards the ground truth.
        let specs = vec![
            ClusterSpec::spherical(vec![0.0, 0.0], 1.4, 40),
            ClusterSpec::spherical(vec![2.2, 0.0], 1.4, 40),
        ];
        let mut scores_with = Vec::new();
        let mut scores_without = Vec::new();
        for seed in 0..5u64 {
            let mut rng = SeededRng::new(seed);
            let ds = gaussian_mixture(&specs, &mut rng);
            let pool = constraint_pool(ds.labels(), 0.4, 2, &mut rng);
            let with = MpckMeans::new(2).fit(ds.matrix(), &pool, &mut rng);
            let without =
                MpckMeans::new(2).fit(ds.matrix(), &ConstraintSet::new(ds.len()), &mut rng);
            scores_with.push(adjusted_rand_index(&with.partition, ds.labels()));
            scores_without.push(adjusted_rand_index(&without.partition, ds.labels()));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&scores_with) >= mean(&scores_without) - 0.02,
            "with constraints {:?} vs without {:?}",
            scores_with,
            scores_without
        );
    }

    #[test]
    fn satisfies_most_constraints_on_easy_data() {
        let mut rng = SeededRng::new(3);
        let ds = separated_blobs(3, 20, 3, 9.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.4, 2, &mut rng);
        let result = MpckMeans::new(3).fit(ds.matrix(), &pool, &mut rng);
        let f = constraint_fmeasure(&result.partition, &pool);
        assert!(f > 0.9, "constraint F-measure = {f}");
    }

    #[test]
    fn produces_exactly_k_or_fewer_clusters() {
        let mut rng = SeededRng::new(4);
        let ds = separated_blobs(2, 20, 3, 8.0, &mut rng);
        for k in [1usize, 2, 3, 5, 8] {
            let result =
                MpckMeans::new(k).fit(ds.matrix(), &ConstraintSet::new(ds.len()), &mut rng);
            assert!(result.partition.n_clusters() <= k);
            assert!(result.partition.n_clusters() >= 1);
            assert_eq!(result.partition.len(), ds.len());
        }
    }

    #[test]
    fn metric_learning_adapts_to_feature_scales() {
        // One informative dimension, one heavily scaled noise dimension:
        // with metric learning the noise dimension should receive a much
        // smaller weight than the informative one within each cluster.
        let mut specs = Vec::new();
        for &c in &[0.0f64, 8.0] {
            specs.push(ClusterSpec {
                center: vec![c, 0.0],
                std_devs: vec![0.5, 25.0],
                size: 40,
                elongation: 0.0,
            });
        }
        let mut rng = SeededRng::new(5);
        let ds = gaussian_mixture(&specs, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.3, 2, &mut rng);
        let result = MpckMeans::new(2).fit(ds.matrix(), &pool, &mut rng);
        for m in &result.metrics {
            assert!(
                m[0] > m[1],
                "informative dimension should get larger weight: {m:?}"
            );
        }
    }

    #[test]
    fn shared_seeding_is_bit_identical_across_k() {
        // One MpckSeeding serves every k of a parameter sweep and must
        // reproduce the direct fit exactly (the cache trades time, never
        // results).
        let mut rng = SeededRng::new(10);
        let ds = separated_blobs(3, 15, 3, 9.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.3, 2, &mut rng);
        let seeding = MpckSeeding::compute(ds.matrix(), &pool, true);
        assert!(seeding.artifact_bytes() > 0);
        for k in [2usize, 3, 5] {
            let direct = MpckMeans::new(k).fit(ds.matrix(), &pool, &mut SeededRng::new(77));
            let seeded =
                MpckMeans::new(k).fit_seeded(ds.matrix(), &seeding, &mut SeededRng::new(77));
            assert_eq!(direct.partition, seeded.partition);
            assert_eq!(direct.objective, seeded.objective);
            assert_eq!(direct.centroids, seeded.centroids);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = SeededRng::new(6);
        let ds = separated_blobs(3, 15, 3, 9.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.3, 2, &mut rng);
        let a = MpckMeans::new(3).fit(ds.matrix(), &pool, &mut SeededRng::new(9));
        let b = MpckMeans::new(3).fit(ds.matrix(), &pool, &mut SeededRng::new(9));
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn disabling_metric_learning_keeps_unit_weights() {
        let mut rng = SeededRng::new(7);
        let ds = separated_blobs(2, 15, 3, 8.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.3, 2, &mut rng);
        let result =
            MpckMeans::new(2)
                .with_metric_learning(false)
                .fit(ds.matrix(), &pool, &mut rng);
        for m in &result.metrics {
            assert!(m.iter().all(|&w| (w - 1.0).abs() < 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn k_zero_panics() {
        let data = DataMatrix::from_rows(&[vec![0.0], vec![1.0]]);
        let mut rng = SeededRng::new(8);
        let _ = MpckMeans::new(0).fit(&data, &ConstraintSet::new(2), &mut rng);
    }

    #[test]
    fn k_one_puts_everything_together() {
        let mut rng = SeededRng::new(9);
        let ds = separated_blobs(2, 10, 2, 8.0, &mut rng);
        let result = MpckMeans::new(1).fit(ds.matrix(), &ConstraintSet::new(ds.len()), &mut rng);
        assert_eq!(result.partition.n_clusters(), 1);
    }
}
