//! COP-KMeans (Wagstaff, Cardie, Rogers & Schrödl 2001).
//!
//! A constrained k-means with *hard* constraint enforcement: during the
//! assignment step every object is placed in the nearest centroid whose
//! cluster does not violate any must-link or cannot-link constraint with the
//! objects assigned so far.  If no such cluster exists the algorithm fails.
//!
//! COP-KMeans is included as an ablation baseline: the CVCP paper evaluates
//! MPCKMeans (soft constraints + metric learning); comparing against hard
//! enforcement shows why the soft formulation is preferred on noisy side
//! information.

use crate::init::kmeanspp_centroids;
use crate::objective::{recompute_centroids, sq_dist};
use cvcp_constraints::closure::transitive_closure;
use cvcp_constraints::{ConstraintKind, ConstraintSet};
use cvcp_data::rng::SeededRng;
use cvcp_data::{DataMatrix, Partition};
use std::fmt;

/// Failure modes of COP-KMeans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CopKMeansError {
    /// Some object could not be assigned to any cluster without violating a
    /// constraint (after the configured number of restarts).
    Infeasible {
        /// The object that could not be placed.
        object: usize,
    },
}

impl fmt::Display for CopKMeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CopKMeansError::Infeasible { object } => write!(
                f,
                "COP-KMeans could not assign object {object} without violating a constraint"
            ),
        }
    }
}

impl std::error::Error for CopKMeansError {}

/// Configuration for COP-KMeans.
#[derive(Debug, Clone)]
pub struct CopKMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Number of restarts before giving up on an infeasible instance.
    pub n_init: usize,
}

impl CopKMeans {
    /// Creates a configuration with defaults (`max_iter = 100`, `n_init = 5`).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iter: 100,
            n_init: 5,
        }
    }

    /// Runs COP-KMeans.  Returns an error if a feasible assignment could not
    /// be found in any restart.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the number of objects.
    pub fn fit(
        &self,
        data: &DataMatrix,
        constraints: &ConstraintSet,
        rng: &mut SeededRng,
    ) -> Result<Partition, CopKMeansError> {
        assert!(
            self.k >= 1 && self.k <= data.n_rows(),
            "k = {} invalid for {} objects",
            self.k,
            data.n_rows()
        );
        let closed = transitive_closure(constraints);
        let n = data.n_rows();

        // Pre-index constraints per object for the feasibility check.
        let mut ml: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut cl: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in closed.iter() {
            match c.kind {
                ConstraintKind::MustLink => {
                    ml[c.a].push(c.b);
                    ml[c.b].push(c.a);
                }
                ConstraintKind::CannotLink => {
                    cl[c.a].push(c.b);
                    cl[c.b].push(c.a);
                }
            }
        }

        let mut last_err = CopKMeansError::Infeasible { object: 0 };
        for _ in 0..self.n_init.max(1) {
            match self.fit_once(data, &ml, &cl, rng) {
                Ok(p) => return Ok(p),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn fit_once(
        &self,
        data: &DataMatrix,
        ml: &[Vec<usize>],
        cl: &[Vec<usize>],
        rng: &mut SeededRng,
    ) -> Result<Partition, CopKMeansError> {
        let n = data.n_rows();
        let mut centroids = kmeanspp_centroids(data, self.k, rng);
        let mut assignment: Vec<Option<usize>> = vec![None; n];

        for _ in 0..self.max_iter {
            let mut new_assignment: Vec<Option<usize>> = vec![None; n];
            // Visit objects in random order (reduces order bias).
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            for &i in &order {
                // Clusters sorted by distance.
                let mut by_dist: Vec<(usize, f64)> = centroids
                    .iter()
                    .enumerate()
                    .map(|(c, centroid)| (c, sq_dist(data.row(i), centroid)))
                    .collect();
                by_dist.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));

                let mut placed = false;
                for (c, _) in by_dist {
                    if Self::violates(i, c, &new_assignment, ml, cl) {
                        continue;
                    }
                    new_assignment[i] = Some(c);
                    placed = true;
                    break;
                }
                if !placed {
                    return Err(CopKMeansError::Infeasible { object: i });
                }
            }
            let flat: Vec<usize> = new_assignment
                .iter()
                .map(|a| a.expect("assigned"))
                .collect();
            let converged = assignment.iter().zip(&new_assignment).all(|(a, b)| a == b);
            assignment = new_assignment;
            recompute_centroids(data, &flat, &mut centroids);
            if converged {
                break;
            }
        }

        let flat: Vec<usize> = assignment.iter().map(|a| a.expect("assigned")).collect();
        Ok(Partition::from_cluster_ids(&flat))
    }

    /// `true` if putting object `i` into cluster `c` violates any constraint
    /// with respect to the objects assigned so far.
    fn violates(
        i: usize,
        c: usize,
        assignment: &[Option<usize>],
        ml: &[Vec<usize>],
        cl: &[Vec<usize>],
    ) -> bool {
        for &j in &ml[i] {
            if let Some(cj) = assignment[j] {
                if cj != c {
                    return true;
                }
            }
        }
        for &j in &cl[i] {
            if let Some(cj) = assignment[j] {
                if cj == c {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_data::synthetic::separated_blobs;
    use cvcp_metrics::adjusted_rand_index;

    #[test]
    fn respects_hard_constraints_on_separable_data() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 20, 3, 10.0, &mut rng);
        let mut cs = ConstraintSet::new(ds.len());
        // add a handful of ground-truth constraints
        let members = ds.class_members();
        cs.add_must_link(members[0][0], members[0][1]);
        cs.add_must_link(members[1][0], members[1][1]);
        cs.add_cannot_link(members[0][0], members[1][0]);
        let p = CopKMeans::new(3).fit(ds.matrix(), &cs, &mut rng).unwrap();
        assert!(p.same_cluster(members[0][0], members[0][1]));
        assert!(p.same_cluster(members[1][0], members[1][1]));
        assert!(!p.same_cluster(members[0][0], members[1][0]));
        let ari = adjusted_rand_index(&p, ds.labels());
        assert!(ari > 0.9, "ARI = {ari}");
    }

    #[test]
    fn works_without_constraints() {
        let mut rng = SeededRng::new(2);
        let ds = separated_blobs(2, 15, 2, 8.0, &mut rng);
        let cs = ConstraintSet::new(ds.len());
        let p = CopKMeans::new(2).fit(ds.matrix(), &cs, &mut rng).unwrap();
        assert_eq!(p.n_clusters(), 2);
    }

    #[test]
    fn infeasible_when_cannot_links_exceed_k() {
        // 3 mutually cannot-linked objects but k = 2 -> infeasible.
        let data = DataMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let mut cs = ConstraintSet::new(4);
        cs.add_cannot_link(0, 1);
        cs.add_cannot_link(1, 2);
        cs.add_cannot_link(0, 2);
        let mut rng = SeededRng::new(3);
        let err = CopKMeans::new(2).fit(&data, &cs, &mut rng);
        assert!(err.is_err());
        let msg = format!("{}", err.unwrap_err());
        assert!(msg.contains("could not assign"));
    }

    #[test]
    fn must_link_closure_is_enforced() {
        // chained must-links 0-1, 1-2: all three must share a cluster even
        // though 0-2 was never stated explicitly.
        let data = DataMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![5.0, 5.0],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![0.1, 0.0],
        ]);
        let mut cs = ConstraintSet::new(5);
        cs.add_must_link(0, 1);
        cs.add_must_link(1, 2);
        let mut rng = SeededRng::new(4);
        let p = CopKMeans::new(2).fit(&data, &cs, &mut rng).unwrap();
        assert!(p.same_cluster(0, 1));
        assert!(p.same_cluster(1, 2));
        assert!(p.same_cluster(0, 2));
    }
}
