//! Standard (unsupervised) k-means via Lloyd's algorithm with k-means++
//! seeding and multiple restarts.
//!
//! Used as the unsupervised backbone of the constrained variants and as a
//! baseline in the suite's ablation benchmarks.

use crate::init::{kmeanspp_centroids, random_centroids};
use crate::objective::{inertia, recompute_centroids, sq_dist};
use cvcp_data::rng::SeededRng;
use cvcp_data::{DataMatrix, Partition};

/// Seeding strategy for [`KMeans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seeding {
    /// Uniformly random distinct data points.
    Random,
    /// k-means++ (D²) seeding.
    KMeansPlusPlus,
}

/// Configuration and entry point for Lloyd's k-means.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations per restart.
    pub max_iter: usize,
    /// Convergence tolerance on the relative decrease of the objective.
    pub tol: f64,
    /// Number of random restarts; the best (lowest-inertia) result is kept.
    pub n_init: usize,
    /// Seeding strategy.
    pub seeding: Seeding,
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final cluster assignment (no noise).
    pub partition: Partition,
    /// Final centroids (`k` rows).
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Number of iterations of the best restart.
    pub iterations: usize,
}

impl KMeans {
    /// Creates a k-means configuration with sensible defaults
    /// (`max_iter = 100`, `tol = 1e-6`, `n_init = 4`, k-means++ seeding).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iter: 100,
            tol: 1e-6,
            n_init: 4,
            seeding: Seeding::KMeansPlusPlus,
        }
    }

    /// Sets the maximum number of iterations.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Sets the number of restarts.
    pub fn with_n_init(mut self, n_init: usize) -> Self {
        self.n_init = n_init.max(1);
        self
    }

    /// Sets the seeding strategy.
    pub fn with_seeding(mut self, seeding: Seeding) -> Self {
        self.seeding = seeding;
        self
    }

    /// Runs k-means on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or larger than the number of objects.
    pub fn fit(&self, data: &DataMatrix, rng: &mut SeededRng) -> KMeansResult {
        assert!(
            self.k >= 1 && self.k <= data.n_rows(),
            "k = {} is invalid for {} objects",
            self.k,
            data.n_rows()
        );
        let mut best: Option<KMeansResult> = None;
        for _ in 0..self.n_init.max(1) {
            let result = self.fit_once(data, rng);
            if best.as_ref().is_none_or(|b| result.inertia < b.inertia) {
                best = Some(result);
            }
        }
        best.expect("at least one restart")
    }

    #[allow(clippy::needless_range_loop)] // assignment[i] pairs with data.row(i)
    fn fit_once(&self, data: &DataMatrix, rng: &mut SeededRng) -> KMeansResult {
        let n = data.n_rows();
        let mut centroids = match self.seeding {
            Seeding::Random => random_centroids(data, self.k, rng),
            Seeding::KMeansPlusPlus => kmeanspp_centroids(data, self.k, rng),
        };
        let mut assignment = vec![0usize; n];
        let mut prev_inertia = f64::INFINITY;
        let mut iterations = 0;

        for it in 0..self.max_iter {
            iterations = it + 1;
            // Assignment step.
            for i in 0..n {
                let row = data.row(i);
                let mut best_c = 0;
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = sq_dist(row, centroid);
                    if d < best_d {
                        best_d = d;
                        best_c = c;
                    }
                }
                assignment[i] = best_c;
            }
            // Re-seed empty clusters with the farthest point from its centroid.
            for c in 0..self.k {
                if !assignment.contains(&c) {
                    let (far, _) = (0..n)
                        .map(|i| (i, sq_dist(data.row(i), &centroids[assignment[i]])))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                        .expect("non-empty data");
                    assignment[far] = c;
                }
            }
            // Update step.
            recompute_centroids(data, &assignment, &mut centroids);
            let obj = inertia(data, &assignment, &centroids);
            if (prev_inertia - obj).abs() <= self.tol * prev_inertia.max(1e-12) {
                prev_inertia = obj;
                break;
            }
            prev_inertia = obj;
        }

        KMeansResult {
            partition: Partition::from_cluster_ids(&assignment),
            inertia: prev_inertia,
            centroids,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_data::synthetic::separated_blobs;
    use cvcp_metrics::adjusted_rand_index;

    #[test]
    fn recovers_well_separated_blobs() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 30, 4, 10.0, &mut rng);
        let result = KMeans::new(3).fit(ds.matrix(), &mut rng);
        let ari = adjusted_rand_index(&result.partition, ds.labels());
        assert!(ari > 0.95, "ARI = {ari}");
        assert_eq!(result.partition.n_clusters(), 3);
        assert_eq!(result.partition.n_noise(), 0);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let mut rng = SeededRng::new(2);
        let ds = separated_blobs(4, 25, 3, 8.0, &mut rng);
        let i2 = KMeans::new(2).fit(ds.matrix(), &mut rng).inertia;
        let i4 = KMeans::new(4).fit(ds.matrix(), &mut rng).inertia;
        let i8 = KMeans::new(8).fit(ds.matrix(), &mut rng).inertia;
        assert!(i2 > i4);
        assert!(i4 > i8);
    }

    #[test]
    fn k_equals_one_groups_everything() {
        let mut rng = SeededRng::new(3);
        let ds = separated_blobs(2, 10, 2, 5.0, &mut rng);
        let result = KMeans::new(1).fit(ds.matrix(), &mut rng);
        assert_eq!(result.partition.n_clusters(), 1);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let mut rng = SeededRng::new(4);
        let ds = separated_blobs(2, 5, 2, 5.0, &mut rng);
        let result = KMeans::new(ds.len()).fit(ds.matrix(), &mut rng);
        assert!(result.inertia < 1e-9);
        assert_eq!(result.partition.n_clusters(), ds.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut rng1 = SeededRng::new(5);
        let ds = separated_blobs(3, 20, 3, 9.0, &mut rng1);
        let mut a_rng = SeededRng::new(42);
        let mut b_rng = SeededRng::new(42);
        let a = KMeans::new(3).fit(ds.matrix(), &mut a_rng);
        let b = KMeans::new(3).fit(ds.matrix(), &mut b_rng);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn random_seeding_also_works() {
        let mut rng = SeededRng::new(6);
        let ds = separated_blobs(3, 20, 3, 10.0, &mut rng);
        let result = KMeans::new(3)
            .with_seeding(Seeding::Random)
            .with_n_init(8)
            .fit(ds.matrix(), &mut rng);
        let ari = adjusted_rand_index(&result.partition, ds.labels());
        assert!(ari > 0.9, "ARI = {ari}");
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn k_zero_panics() {
        let mut rng = SeededRng::new(7);
        let ds = separated_blobs(2, 5, 2, 5.0, &mut rng);
        let _ = KMeans::new(0).fit(ds.matrix(), &mut rng);
    }
}
