//! Shared centroid / objective helpers for the k-means family.

use cvcp_data::DataMatrix;

/// Computes the centroid (mean vector) of the given objects.
///
/// Returns a zero vector when `members` is empty (callers re-seed empty
/// clusters explicitly).
pub fn centroid_of(data: &DataMatrix, members: &[usize]) -> Vec<f64> {
    let dims = data.n_cols();
    let mut c = vec![0.0; dims];
    if members.is_empty() {
        return c;
    }
    for &i in members {
        for (j, v) in data.row(i).iter().enumerate() {
            c[j] += v;
        }
    }
    for v in &mut c {
        *v /= members.len() as f64;
    }
    c
}

/// Recomputes all `k` centroids from an assignment vector.  Clusters with no
/// members keep their previous centroid.
pub fn recompute_centroids(data: &DataMatrix, assignment: &[usize], centroids: &mut [Vec<f64>]) {
    let k = centroids.len();
    let dims = data.n_cols();
    let mut sums = vec![vec![0.0; dims]; k];
    let mut counts = vec![0usize; k];
    for (i, &c) in assignment.iter().enumerate() {
        counts[c] += 1;
        for (j, v) in data.row(i).iter().enumerate() {
            sums[c][j] += v;
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            for j in 0..dims {
                centroids[c][j] = sums[c][j] / counts[c] as f64;
            }
        }
    }
}

/// Squared Euclidean distance between a data row and a centroid.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Weighted (diagonal-metric) squared distance.
#[inline]
pub fn weighted_sq_dist(a: &[f64], b: &[f64], weights: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), weights.len());
    let mut acc = 0.0;
    for ((x, y), w) in a.iter().zip(b).zip(weights) {
        let d = x - y;
        acc += w * d * d;
    }
    acc
}

/// The within-cluster sum of squared distances (the k-means objective).
pub fn inertia(data: &DataMatrix, assignment: &[usize], centroids: &[Vec<f64>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(i, &c)| sq_dist(data.row(i), &centroids[c]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> DataMatrix {
        DataMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![10.0, 10.0],
            vec![12.0, 10.0],
        ])
    }

    #[test]
    fn centroid_of_members() {
        let d = data();
        assert_eq!(centroid_of(&d, &[0, 1]), vec![1.0, 0.0]);
        assert_eq!(centroid_of(&d, &[2, 3]), vec![11.0, 10.0]);
        assert_eq!(centroid_of(&d, &[]), vec![0.0, 0.0]);
    }

    #[test]
    fn recompute_handles_empty_clusters() {
        let d = data();
        let mut centroids = vec![vec![5.0, 5.0], vec![7.0, 7.0], vec![-1.0, -1.0]];
        recompute_centroids(&d, &[0, 0, 1, 1], &mut centroids);
        assert_eq!(centroids[0], vec![1.0, 0.0]);
        assert_eq!(centroids[1], vec![11.0, 10.0]);
        // cluster 2 had no members: unchanged
        assert_eq!(centroids[2], vec![-1.0, -1.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(
            weighted_sq_dist(&[0.0, 0.0], &[3.0, 4.0], &[1.0, 1.0]),
            25.0
        );
        assert_eq!(
            weighted_sq_dist(&[0.0, 0.0], &[3.0, 4.0], &[2.0, 0.0]),
            18.0
        );
    }

    #[test]
    fn inertia_of_perfect_assignment() {
        let d = data();
        let centroids = vec![vec![1.0, 0.0], vec![11.0, 10.0]];
        let val = inertia(&d, &[0, 0, 1, 1], &centroids);
        assert_eq!(val, 4.0);
    }
}
