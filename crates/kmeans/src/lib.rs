//! # cvcp-kmeans
//!
//! The k-means family of clustering algorithms used by the CVCP suite:
//!
//! * [`lloyd`]: standard (unsupervised) k-means with k-means++ seeding;
//! * [`cop_kmeans`]: COP-KMeans (Wagstaff et al. 2001) — hard constraint
//!   enforcement during assignment (ablation baseline);
//! * [`pck_means`]: PCKMeans (Basu et al. 2004) — soft constraint penalties,
//!   no metric learning (ablation baseline);
//! * [`mpck_means`]: **MPCKMeans** (Bilenko, Basu & Mooney 2004) — the
//!   semi-supervised partitional algorithm evaluated in the CVCP paper,
//!   combining soft constraint penalties with per-cluster diagonal metric
//!   learning.  Its free parameter is the number of clusters `k`, which is
//!   exactly what CVCP selects in the paper's experiments.
//!
//! All algorithms consume a [`cvcp_constraints::ConstraintSet`] (possibly
//! empty) and produce a [`cvcp_data::Partition`] with no noise objects.

#![warn(missing_docs)]

pub mod cop_kmeans;
pub mod init;
pub mod lloyd;
pub mod mpck_means;
pub mod objective;
pub mod pck_means;

pub use cop_kmeans::{CopKMeans, CopKMeansError};
pub use init::{
    centroids_from_candidates, kmeanspp_centroids, neighborhood_candidates, neighborhood_centroids,
    random_centroids,
};
pub use lloyd::{KMeans, KMeansResult};
pub use mpck_means::{MpckMeans, MpckMeansResult, MpckSeeding};
pub use pck_means::PckMeans;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cop_kmeans::CopKMeans;
    pub use crate::lloyd::KMeans;
    pub use crate::mpck_means::MpckMeans;
    pub use crate::pck_means::PckMeans;
}
