//! PCKMeans — Pairwise Constrained K-Means (Basu, Bilenko & Mooney 2004).
//!
//! The soft-constraint half of MPCKMeans: constraint violations are penalised
//! during assignment but no metric is learned (the Euclidean metric is used
//! for every cluster).  Provided as an ablation baseline so the suite can
//! quantify the contribution of metric learning; the CVCP paper itself
//! evaluates MPCKMeans.

use crate::mpck_means::{MpckMeans, MpckMeansResult};
use cvcp_constraints::ConstraintSet;
use cvcp_data::rng::SeededRng;
use cvcp_data::{DataMatrix, Partition};

/// Configuration for PCKMeans.
#[derive(Debug, Clone)]
pub struct PckMeans {
    inner: MpckMeans,
}

impl PckMeans {
    /// Creates a PCKMeans configuration (MPCKMeans with metric learning
    /// disabled).
    pub fn new(k: usize) -> Self {
        Self {
            inner: MpckMeans::new(k).with_metric_learning(false),
        }
    }

    /// Sets the constraint-violation weights.
    pub fn with_weights(mut self, must_link: f64, cannot_link: f64) -> Self {
        self.inner = self.inner.with_weights(must_link, cannot_link);
        self
    }

    /// Sets the maximum number of EM iterations.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.inner = self.inner.with_max_iter(max_iter);
        self
    }

    /// The number of clusters.
    pub fn k(&self) -> usize {
        self.inner.k
    }

    /// Runs PCKMeans and returns the full result (centroids, objective, …).
    pub fn fit_full(
        &self,
        data: &DataMatrix,
        constraints: &ConstraintSet,
        rng: &mut SeededRng,
    ) -> MpckMeansResult {
        self.inner.fit(data, constraints, rng)
    }

    /// Runs PCKMeans and returns only the partition.
    pub fn fit(
        &self,
        data: &DataMatrix,
        constraints: &ConstraintSet,
        rng: &mut SeededRng,
    ) -> Partition {
        self.fit_full(data, constraints, rng).partition
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_constraints::generate::constraint_pool;
    use cvcp_data::synthetic::separated_blobs;
    use cvcp_metrics::adjusted_rand_index;

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 20, 3, 10.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.3, 2, &mut rng);
        let p = PckMeans::new(3).fit(ds.matrix(), &pool, &mut rng);
        let ari = adjusted_rand_index(&p, ds.labels());
        assert!(ari > 0.9, "ARI = {ari}");
    }

    #[test]
    fn never_learns_metrics() {
        let mut rng = SeededRng::new(2);
        let ds = separated_blobs(2, 15, 4, 8.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.3, 2, &mut rng);
        let result = PckMeans::new(2).fit_full(ds.matrix(), &pool, &mut rng);
        for m in &result.metrics {
            assert!(m.iter().all(|&w| (w - 1.0).abs() < 1e-12));
        }
    }

    #[test]
    fn exposes_k() {
        assert_eq!(PckMeans::new(7).k(), 7);
    }

    #[test]
    fn builder_methods_chain() {
        let mut rng = SeededRng::new(3);
        let ds = separated_blobs(2, 10, 2, 8.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.3, 2, &mut rng);
        let p = PckMeans::new(2)
            .with_weights(2.0, 2.0)
            .with_max_iter(10)
            .fit(ds.matrix(), &pool, &mut rng);
        assert_eq!(p.len(), ds.len());
    }
}
